"""Property-based tests (hypothesis): core invariants of the engine.

Random graphs and random pattern fragments exercise the invariants the
paper states declaratively:

* TRAIL results never repeat edges; ACYCLIC never repeats nodes; SIMPLE
  only closes at its start (Figure 7),
* ANY/ALL SHORTEST return minimal-length walks per endpoint partition,
  and adding a selector never empties a non-empty result (Section 5.1),
* path pattern union deduplicates; multiset alternation counts
  multiplicities (Section 4.5),
* reduction/deduplication is idempotent,
* serialization round-trips.
"""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.errors import BudgetExceededError
from repro.graph import GraphBuilder, graph_from_json, graph_to_dict, graph_to_json
from repro.gpml import match as _match
from repro.gpml import prepare
from repro.gpml.matcher import MatcherConfig


def match(graph, query, config=None):
    """match() that discards hypothesis examples hitting safety budgets.

    Dense random multigraphs can hold astronomically many (finite) trails;
    the engine's budget guard is correct behaviour there, but tells us
    nothing about the invariant under test.
    """
    try:
        return _match(graph, query, config)
    except BudgetExceededError:
        assume(False)


# ----------------------------------------------------------------------
# Random graph strategy
# ----------------------------------------------------------------------
@st.composite
def small_graphs(draw):
    """Graphs with <= 6 nodes, <= 10 edges, 2 labels, 1 int property."""
    num_nodes = draw(st.integers(min_value=1, max_value=6))
    builder = GraphBuilder("random")
    for i in range(num_nodes):
        label = draw(st.sampled_from(["A", "B"]))
        builder.node(f"n{i}", label, v=draw(st.integers(0, 3)))
    num_edges = draw(st.integers(min_value=0, max_value=10))
    for j in range(num_edges):
        src = f"n{draw(st.integers(0, num_nodes - 1))}"
        dst = f"n{draw(st.integers(0, num_nodes - 1))}"
        label = draw(st.sampled_from(["E", "F"]))
        if draw(st.booleans()):
            builder.directed(f"e{j}", src, dst, label, w=draw(st.integers(0, 3)))
        else:
            builder.undirected(f"e{j}", src, dst, label, w=draw(st.integers(0, 3)))
    return builder.build()


CONFIG = MatcherConfig(max_steps=200_000, max_results=50_000)


class TestRestrictorInvariants:
    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_trail_never_repeats_edges(self, graph):
        result = match(graph, "MATCH TRAIL p = (a)-[e]->*(b)", CONFIG)
        for path in result.paths():
            assert path.is_trail()

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_acyclic_never_repeats_nodes(self, graph):
        result = match(graph, "MATCH ACYCLIC p = (a)-[e]->*(b)", CONFIG)
        for path in result.paths():
            assert path.is_acyclic()

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_simple_paths_are_simple(self, graph):
        result = match(graph, "MATCH SIMPLE p = (a)-[e]->*(b)", CONFIG)
        for path in result.paths():
            assert path.is_simple()

    @given(small_graphs())
    @settings(max_examples=30, deadline=None)
    def test_acyclic_subset_of_simple_subset_of_trail_plus(self, graph):
        # every acyclic walk is simple; every simple DIRECTED walk of
        # length >= 1 repeats no edge, hence is a trail
        acyclic = {str(p) for p in match(graph, "MATCH ACYCLIC p = (a)->*(b)", CONFIG).paths()}
        simple = {str(p) for p in match(graph, "MATCH SIMPLE p = (a)->*(b)", CONFIG).paths()}
        trail = {str(p) for p in match(graph, "MATCH TRAIL p = (a)->*(b)", CONFIG).paths()}
        assert acyclic <= simple
        assert simple <= trail


class TestSelectorInvariants:
    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_any_shortest_is_minimal_per_partition(self, graph):
        shortest = match(graph, "MATCH ANY SHORTEST p = (a)-[e]->*(b)", CONFIG)
        trails = match(graph, "MATCH TRAIL p = (a)-[e]->*(b)", CONFIG)
        best: dict = {}
        for path in trails.paths():
            key = (path.source_id, path.target_id)
            best[key] = min(best.get(key, path.length), path.length)
        for path in shortest.paths():
            key = (path.source_id, path.target_id)
            assert path.length == best[key]

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_all_shortest_contains_any_shortest(self, graph):
        any_s = {str(p) for p in match(graph, "MATCH ANY SHORTEST p = (a)->*(b)", CONFIG).paths()}
        all_s = {str(p) for p in match(graph, "MATCH ALL SHORTEST p = (a)->*(b)", CONFIG).paths()}
        assert any_s <= all_s

    @given(small_graphs(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_shortest_k_monotone_in_k(self, graph, k):
        smaller = match(graph, f"MATCH SHORTEST {k} p = (a)->*(b)", CONFIG)
        larger = match(graph, f"MATCH SHORTEST {k + 1} p = (a)->*(b)", CONFIG)
        assert len(smaller) <= len(larger)

    @given(small_graphs())
    @settings(max_examples=30, deadline=None)
    def test_selector_never_empties_nonempty(self, graph):
        # Section 5.1: adding a selector keeps at least one match.
        base = match(graph, "MATCH (a)-[e]->{1,2}(b)", CONFIG)
        selected = match(graph, "MATCH ANY (a)-[e]->{1,2}(b)", CONFIG)
        assert bool(base) == bool(selected)


class TestUnionInvariants:
    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_union_is_dedup_of_alternation(self, graph):
        union = match(graph, "MATCH (c:A) | (c:B) | (c:A)", CONFIG)
        multiset = match(graph, "MATCH (c:A) |+| (c:B) |+| (c:A)", CONFIG)
        union_ids = sorted(union.ids("c"))
        multiset_ids = sorted(multiset.ids("c"))
        assert sorted(set(multiset_ids)) == union_ids
        assert len(multiset_ids) >= len(union_ids)

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_overlapping_quantifier_union(self, graph):
        left = match(graph, "MATCH p = ->{1,2} | ->{2,3}", CONFIG)
        right = match(graph, "MATCH p = ->{1,3}", CONFIG)
        assert sorted(str(p) for p in left.paths()) == sorted(
            str(p) for p in right.paths()
        )


class TestDeterminism:
    @given(small_graphs())
    @settings(max_examples=30, deadline=None)
    def test_match_is_deterministic(self, graph):
        # directed + bounded keeps the walk count tame on dense mixed
        # multigraphs (any-orientation unbounded trails explode)
        query = "MATCH TRAIL p = (a)-[e]->{0,5}(b:A)"
        first = match(graph, query, CONFIG)
        second = match(graph, query, CONFIG)
        assert [str(p) for p in first.paths()] == [str(p) for p in second.paths()]

    @given(small_graphs())
    @settings(max_examples=30, deadline=None)
    def test_prepared_query_reusable(self, graph):
        prepared = prepare("MATCH (x:A)-[e]->(y)")
        assert match(graph, prepared, CONFIG).to_dicts() == match(
            graph, prepared, CONFIG
        ).to_dicts()


class TestSerializationRoundTrip:
    @given(small_graphs())
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip(self, graph):
        clone = graph_from_json(graph_to_json(graph))
        assert graph_to_dict(clone) == graph_to_dict(graph)
