"""Stateful differential test: random DML against a plain-dict oracle.

A hypothesis :class:`RuleBasedStateMachine` interleaves random mutations
— direct graph API calls *and* GQL ``INSERT``/``SET``/``DELETE``
statements, including a guaranteed-failing write that must roll back —
with read queries.  After every step the graph must agree with a
dead-simple oracle (two dicts), and every version-keyed derived
structure must be consistent for the *current* version:

* the maintained property index answers exactly like a full scan,
* the statistics catalog rebuilds to the live node/edge counts,
* the columnar snapshot is rebuilt for the current version and the
  frontier engine agrees with the object matcher on a probe query,

in both engine modes (columnar on and off — the same toggle the
``REPRO_DISABLE_COLUMNAR=1`` CI leg flips globally).
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import GqlError, GraphError, ReproError
from repro.graph.columnar import cached_snapshot, snapshot_for
from repro.graph.model import PropertyGraph
from repro.gpml.matcher import MatcherConfig
from repro.gql import execute_gql
from repro.planner.stats import StatisticsCatalog

PROBE = "MATCH (a)-[e]->(b) RETURN a.v AS src, b.v AS dst"
LABELS = ("A", "B")
VALUES = st.integers(min_value=0, max_value=4)


def canon(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in r.items())) for r in rows)


class DmlMachine(RuleBasedStateMachine):
    use_columnar = True

    def __init__(self):
        super().__init__()
        self.graph = PropertyGraph("dml")
        self.graph.create_index("A", "v")
        self.config = MatcherConfig(use_columnar=self.use_columnar)
        # oracle: node id -> [labels, props]; edge id -> [first, second,
        # directed, labels, props]
        self.nodes: dict = {}
        self.edges: dict = {}
        self.counter = 0
        self.last_version = self.graph.version

    # -- direct-API mutations ------------------------------------------
    @rule(labels=st.sets(st.sampled_from(LABELS), max_size=2), v=VALUES)
    def add_node(self, labels, v):
        node_id = f"n{self.counter}"
        self.counter += 1
        self.graph.add_node(node_id, labels=labels, properties={"v": v})
        self.nodes[node_id] = [set(labels), {"v": v}]

    @precondition(lambda self: self.nodes)
    @rule(data=st.data(), directed=st.booleans(), v=VALUES)
    def add_edge(self, data, directed, v):
        src = data.draw(st.sampled_from(sorted(self.nodes)))
        dst = data.draw(st.sampled_from(sorted(self.nodes)))
        edge_id = f"e{self.counter}"
        self.counter += 1
        self.graph.add_edge(
            edge_id, src, dst, labels=["E"], properties={"v": v}, directed=directed
        )
        self.edges[edge_id] = [src, dst, directed, {"E"}, {"v": v}]

    @precondition(lambda self: self.nodes or self.edges)
    @rule(data=st.data(), key=st.sampled_from(["v", "w"]), value=VALUES)
    def set_property(self, data, key, value):
        element_id = data.draw(
            st.sampled_from(sorted(self.nodes) + sorted(self.edges))
        )
        self.graph.set_property(element_id, key, value)
        store = self.nodes if element_id in self.nodes else self.edges
        store[element_id][-1][key] = value

    @precondition(lambda self: self.nodes)
    @rule(data=st.data(), key=st.sampled_from(["v", "w"]))
    def remove_property(self, data, key):
        node_id = data.draw(st.sampled_from(sorted(self.nodes)))
        self.graph.remove_property(node_id, key)
        self.nodes[node_id][-1].pop(key, None)

    @precondition(lambda self: self.nodes)
    @rule(data=st.data(), labels=st.sets(st.sampled_from(LABELS), max_size=2))
    def set_labels(self, data, labels):
        node_id = data.draw(st.sampled_from(sorted(self.nodes)))
        self.graph.set_labels(node_id, labels)
        self.nodes[node_id][0] = set(labels)

    @precondition(lambda self: self.edges)
    @rule(data=st.data())
    def remove_edge(self, data):
        edge_id = data.draw(st.sampled_from(sorted(self.edges)))
        self.graph.remove_edge(edge_id)
        del self.edges[edge_id]

    @precondition(lambda self: self.nodes)
    @rule(data=st.data())
    def remove_node_detached(self, data):
        node_id = data.draw(st.sampled_from(sorted(self.nodes)))
        self.graph.remove_node(node_id)
        del self.nodes[node_id]
        self.edges = {
            eid: spec
            for eid, spec in self.edges.items()
            if node_id not in (spec[0], spec[1])
        }

    # -- GQL DML mutations ---------------------------------------------
    @rule(v=VALUES)
    def gql_insert(self, v):
        before = set(self.graph.node_ids())
        execute_gql(self.graph, f"INSERT (:A {{v: {v}}})", config=self.config)
        [created] = set(self.graph.node_ids()) - before
        self.nodes[created] = [{"A"}, {"v": v}]

    @rule(v=VALUES, w=VALUES)
    def gql_set(self, v, w):
        execute_gql(
            self.graph,
            f"MATCH (a WHERE a.v = {v}) SET a.w = {w}",
            config=self.config,
        )
        for spec in self.nodes.values():
            if spec[-1].get("v") == v:
                spec[-1]["w"] = w

    @rule(v=VALUES)
    def gql_detach_delete(self, v):
        execute_gql(
            self.graph,
            f"MATCH (a WHERE a.v = {v}) DETACH DELETE a",
            config=self.config,
        )
        doomed = {
            nid for nid, spec in self.nodes.items() if spec[-1].get("v") == v
        }
        for nid in doomed:
            del self.nodes[nid]
        self.edges = {
            eid: spec
            for eid, spec in self.edges.items()
            if spec[0] not in doomed and spec[1] not in doomed
        }

    @precondition(lambda self: self.nodes)
    @rule()
    def gql_failing_write_rolls_back(self):
        # the first SET mutates every node, then dividing by a string
        # blows up on the first row of the second — everything reverts
        try:
            execute_gql(
                self.graph,
                "MATCH (a) SET a.poison = 1 SET a.boom = 1 / 'not a number'",
                config=self.config,
            )
        except ReproError:
            pass
        # oracle untouched: the invariants below verify the rollback

    # -- invariants ----------------------------------------------------
    @invariant()
    def graph_equals_oracle(self):
        g = self.graph
        assert set(g.node_ids()) == set(self.nodes)
        assert set(g.edge_ids()) == set(self.edges)
        for nid, (labels, props) in self.nodes.items():
            assert g.labels_of(nid) == frozenset(labels)
            assert dict(g.node(nid).properties) == props
        for eid, (first, second, directed, labels, props) in self.edges.items():
            edge = g.edge(eid)
            assert edge.endpoint_ids == (first, second)
            assert edge.is_directed == directed
            assert g.labels_of(eid) == frozenset(labels)
            assert dict(edge.properties) == props

    @invariant()
    def version_monotonic(self):
        assert self.graph.version >= self.last_version
        self.last_version = self.graph.version

    @invariant()
    def property_index_matches_scan(self):
        g = self.graph
        assert g.has_index("A", "v")  # survived every rollback
        for value in range(5):
            expected = frozenset(
                nid
                for nid, (labels, props) in self.nodes.items()
                if "A" in labels and props.get("v") == value
            )
            assert g.index_lookup("A", "v", value, create=False) == expected

    @invariant()
    def statistics_catalog_tracks_version(self):
        catalog = StatisticsCatalog.for_graph(self.graph)
        assert catalog.num_nodes == len(self.nodes)
        assert catalog.num_edges == len(self.edges)
        assert StatisticsCatalog.for_graph(self.graph) is catalog  # cached

    @invariant()
    def engines_agree_on_probe(self):
        cols = canon(
            list(
                execute_gql(
                    self.graph, PROBE, config=MatcherConfig(use_columnar=True)
                )
            )
        )
        oracle = canon(
            list(
                execute_gql(
                    self.graph, PROBE, config=MatcherConfig(use_columnar=False)
                )
            )
        )
        assert cols == oracle
        snapshot = cached_snapshot(self.graph)
        if snapshot is not None:
            assert snapshot.version == self.graph.version
        assert snapshot_for(self.graph).version == self.graph.version


class ColumnarDmlMachine(DmlMachine):
    use_columnar = True


class OracleDmlMachine(DmlMachine):
    """The REPRO_DISABLE_COLUMNAR=1 shape: object-graph matcher only."""

    use_columnar = False


_SETTINGS = settings(max_examples=15, stateful_step_count=25, deadline=None)

TestDmlColumnar = ColumnarDmlMachine.TestCase
TestDmlColumnar.settings = _SETTINGS
TestDmlOracle = OracleDmlMachine.TestCase
TestDmlOracle.settings = _SETTINGS
