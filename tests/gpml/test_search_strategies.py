"""Edge cases of the four search strategies."""

import pytest

from repro.datasets import cycle_graph, diamond_chain
from repro.graph import GraphBuilder
from repro.gpml import match
from repro.gpml.matcher import MatcherConfig


class TestShortestOnCycles:
    def test_terminates_without_restrictor(self, two_cycle):
        # counter saturation makes the product space finite
        result = match(two_cycle, "MATCH ALL SHORTEST p = (a)-[e:E]->+(b)")
        lengths = {(p.source_id, p.target_id): p.length for p in result.paths()}
        assert lengths[("x", "y")] == 1
        assert lengths[("x", "x")] == 2  # around the cycle

    def test_shortest_with_min_iterations(self):
        g = cycle_graph(4)
        # at least 5 hops forces a full lap plus one
        result = match(g, "MATCH ANY SHORTEST p = (a WHERE a.index=0)-[e]->{5,}(b)")
        lengths = sorted(p.length for p in result.paths())
        assert lengths[0] == 5
        assert all(5 <= length <= 8 for length in lengths)

    def test_shortest_zero_length_partitions(self, fig1):
        result = match(fig1, "MATCH ANY SHORTEST p = (a:Account)-[:Transfer]->*(b)")
        zero = [p for p in result.paths() if p.length == 0]
        assert len(zero) == 6  # (a, a) partitions

    def test_all_shortest_respects_where_on_longer_path(self):
        # the shortest walk fails the prefilter; a longer one passes —
        # the selector must pick the shortest *matching* walk.
        g = (
            GraphBuilder("detour")
            .node("s", "N")
            .node("m", "N", ok="yes")
            .node("t", "N")
            .directed("direct", "s", "t", "E")
            .directed("d1", "s", "m", "E")
            .directed("d2", "m", "t", "E")
            .build()
        )
        result = match(
            g,
            "MATCH ALL SHORTEST p = (a WHERE a.ok IS NULL)->+"
            "(q WHERE q.ok='yes')->+(b)",
        )
        st = [p for p in result.paths() if p.source_id == "s" and p.target_id == "t"]
        assert [str(p) for p in st] == ["path(s,d1,m,d2,t)"]


class TestKSearch:
    def test_any_k_on_unbounded_cycle(self):
        g = cycle_graph(3)
        result = match(g, "MATCH ANY 4 p = (a WHERE a.index=0)-[e]->+(b WHERE b.index=0)")
        # laps of length 3, 6, 9, 12 — exactly 4 distinct walks chosen
        assert sorted(p.length for p in result.paths()) == [3, 6, 9, 12]

    def test_shortest_k_collects_ties_first(self, ):
        g = diamond_chain(2)
        result = match(g, "MATCH SHORTEST 3 p = (a WHERE a.branch IS NULL)-[e]->{4,}(b)")
        full = [p for p in result.paths() if p.source_id == "s0" and p.target_id == "s2"]
        assert len(full) == 3
        assert all(p.length == 4 for p in full)

    def test_k_search_respects_max_depth_budget(self):
        g = cycle_graph(3)
        config = MatcherConfig(max_depth=5)
        result = match(
            g,
            "MATCH ANY 99 p = (a WHERE a.index=0)-[e]->+(b WHERE b.index=0)",
            config,
        )
        assert sorted(p.length for p in result.paths()) == [3]  # only one lap fits


class TestCheapest:
    def test_zero_cost_edges(self):
        g = (
            GraphBuilder("zero")
            .node("a", "N")
            .node("b", "N")
            .directed("free", "a", "b", "E", cost=0)
            .directed("paid", "a", "b", "E", cost=5)
            .build()
        )
        result = match(g, "MATCH ANY CHEAPEST p = (x)-[e]->(y)")
        ab = [p for p in result.paths() if p.source_id == "a" and p.target_id == "b"]
        assert [str(p) for p in ab] == ["path(a,free,b)"]

    def test_cost_ties_deterministic(self):
        g = (
            GraphBuilder("ties")
            .node("a", "N")
            .node("b", "N")
            .directed("e1", "a", "b", "E", cost=2)
            .directed("e2", "a", "b", "E", cost=2)
            .build()
        )
        first = match(g, "MATCH ANY CHEAPEST p = (x)-[e]->(y)")
        second = match(g, "MATCH ANY CHEAPEST p = (x)-[e]->(y)")
        assert [str(p) for p in first.paths()] == [str(p) for p in second.paths()]

    def test_cheapest_differs_from_shortest(self):
        g = (
            GraphBuilder("tradeoff")
            .node("s", "N")
            .node("m", "N")
            .node("t", "N")
            .directed("hop", "s", "t", "E", cost=10)
            .directed("l1", "s", "m", "E", cost=1)
            .directed("l2", "m", "t", "E", cost=1)
            .build()
        )
        cheapest = match(g, "MATCH ANY CHEAPEST p = (a WHERE a.x IS NULL)-[e]->+(b)")
        shortest = match(g, "MATCH ANY SHORTEST p = (a WHERE a.x IS NULL)-[e]->+(b)")
        cheap_st = next(
            p for p in cheapest.paths() if p.source_id == "s" and p.target_id == "t"
        )
        short_st = next(
            p for p in shortest.paths() if p.source_id == "s" and p.target_id == "t"
        )
        assert cheap_st.length == 2 and short_st.length == 1


class TestEnumerationEdgeCases:
    def test_zero_iteration_quantifier_positions(self, fig1):
        # {0,0} never matches an edge: start == end for every row
        result = match(fig1, "MATCH (a:Account)-[:Transfer]->{0,0}(b)")
        assert len(result) == 6
        assert all(row["a"] == row["b"] for row in result)

    def test_zero_length_quantifier_body_converges(self, fig1):
        # a quantified body that consumes no edges must not loop forever
        result = match(fig1, "MATCH TRAIL (x:Account) [(y)]{1,} (z)")
        assert len(result) == 6

    def test_self_loop_traversals(self):
        g = GraphBuilder("loop").node("a", "N").directed("l", "a", "a", "E").build()
        result = match(g, "MATCH (x)-[e]-(y)")
        # a directed self-loop is traversable out and in; both collapse
        # to the same reduced binding
        assert len(result) == 1
        result = match(g, "MATCH TRAIL p = (x)-[e:E]->{2,}(y)")
        assert len(result) == 0  # the loop edge cannot repeat under TRAIL
