"""Section 4.6 behaviour: conditional variables and the ? operator."""

import pytest

from repro.gpml import match
from repro.values import NULL, is_null


class TestUnionConditionals:
    def test_conditional_binds_one_side(self, fig1):
        result = match(
            fig1,
            "MATCH [(x WHERE x.owner='Jay')-[:Transfer]->(y)] | "
            "[(x WHERE x.owner='Jay')-[:isLocatedIn]->(z)]",
        )
        assert len(result) == 2
        by_target = {}
        for row in result:
            if not is_null(row["y"]):
                by_target["y"] = row["y"].id
                assert is_null(row["z"])
            else:
                by_target["z"] = row["z"].id
        assert by_target == {"y": "a6", "z": "c2"}


class TestQuestionMark:
    def test_optional_produces_both_rows(self, fig1):
        # transfers into the blocked account, with and without a phone
        result = match(
            fig1,
            "MATCH (x:Account)-[:Transfer]->(y:Account WHERE y.isBlocked='yes') "
            "[~[:hasPhone]~(p)]?",
        )
        rows = {(row["x"].id, row["y"].id, None if is_null(row["p"]) else row["p"].id)
                for row in result}
        assert rows == {("a2", "a4", None), ("a2", "a4", "p3")}

    def test_paper_conditional_filter(self, fig1):
        # Section 4.6: y blocked OR p blocked; the unmatched-p row
        # survives only because y is blocked.
        result = match(
            fig1,
            "MATCH (x:Account)-[:Transfer]->(y:Account) [~[:hasPhone]~(p)]? "
            "WHERE y.isBlocked='yes' OR p.isBlocked='yes'",
        )
        assert len(result) == 2
        assert {row["y"].id for row in result} == {"a4"}

    def test_question_mark_keeps_singleton_semantics(self, fig1):
        # p can be used in SAME-free equality against another singleton
        result = match(
            fig1,
            "MATCH (x WHERE x.owner='Aretha') [~[:hasPhone]~(p)]? "
            "WHERE p IS NOT NULL",
        )
        assert [row["p"].id for row in result] == ["p2"]

    def test_zero_one_quantifier_gives_group_list(self, fig1):
        # {0,1} exposes y as a group variable: a list of 0 or 1 elements
        result = match(
            fig1,
            "MATCH (x WHERE x.owner='Aretha') [~[:hasPhone]~(y)]{0,1}",
        )
        lists = sorted(len(row["y"]) for row in result)
        assert lists == [0, 1]
        assert all(isinstance(row["y"], list) for row in result)

    def test_optional_chain(self, fig1):
        result = match(
            fig1,
            "MATCH (a WHERE a.owner='Scott') [-[:Transfer]->(b) [-[:Transfer]->(c)]?]?",
        )
        shapes = sorted(
            (
                not is_null(row["b"]),
                not is_null(row["c"]),
            )
            for row in result
        )
        assert shapes[0] == (False, False)
        assert (True, True) in shapes
        assert (True, False) in shapes


class TestNullPropagation:
    def test_unbound_conditionals_are_null_in_rows(self, fig1):
        result = match(fig1, "MATCH (x WHERE x.owner='Jay') [-[:Transfer]->(y)]?")
        values = {None if is_null(row["y"]) else row["y"].id for row in result}
        assert values == {None, "a6"}

    def test_aggregates_over_unbound_conditional(self, fig1):
        result = match(
            fig1,
            "MATCH (x WHERE x.owner='Jay') [-[:Transfer]->(y)]? "
            "WHERE COUNT(y) = 0",
        )
        assert len(result) == 1
        assert is_null(result.rows[0]["y"])
