"""EXPLAIN output and matcher safety budgets."""

import pytest

from repro.errors import BudgetExceededError
from repro.gpml import match, prepare
from repro.gpml.explain import explain, explain_automaton
from repro.gpml.matcher import MatcherConfig


class TestExplain:
    def test_mentions_strategy_and_variables(self):
        text = explain("MATCH ALL SHORTEST TRAIL p = (a:Account)-[e:Transfer]->*(b)")
        assert "strategy: shortest" in text
        assert "selector: ALL SHORTEST" in text
        assert "restrictor: TRAIL" in text
        assert "variable e: edge (group)" in text
        assert "variable a: node (singleton)" in text
        assert "termination:" in text

    def test_conditional_classified(self):
        text = explain("MATCH (x) [->(y)]?")
        assert "variable y: node (conditional singleton)" in text

    def test_join_and_postfilter_reported(self):
        text = explain("MATCH (a)->(b), (b)->(c) WHERE a.x = 1")
        assert "cross-pattern join on: b" in text
        assert "postfilter: WHERE" in text

    def test_accepts_prepared_query(self):
        prepared = prepare("MATCH (x)")
        assert "strategy: enumerate" in explain(prepared)

    def test_automaton_dump(self):
        text = explain_automaton("MATCH (x)-[e]->(y)")
        assert "states:" in text


class TestBudgets:
    def test_max_results_guard(self, fig1):
        config = MatcherConfig(max_results=3)
        with pytest.raises(BudgetExceededError):
            match(fig1, "MATCH (x)-[e]-(y)", config)

    def test_max_steps_guard(self, fig1):
        config = MatcherConfig(max_steps=10)
        with pytest.raises(BudgetExceededError):
            match(fig1, "MATCH TRAIL (a)-[e:Transfer]->*(b)", config)

    def test_defaults_are_generous(self, fig1):
        result = match(fig1, "MATCH TRAIL (a)-[e:Transfer]->*(b)")
        assert len(result) > 50
