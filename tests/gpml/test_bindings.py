"""Unit tests for path bindings, reduction and deduplication (§6.4-6.5)."""

import pytest

from repro.gpml.bindings import (
    ElementaryBinding,
    PathBinding,
    ReducedBinding,
    deduplicate,
    reduce_binding,
    strip_bag_tags,
)


def eb(var, ann, element):
    return ElementaryBinding(var, ann, element)


class TestReduction:
    def test_singletons_kept(self):
        binding = PathBinding(
            elements=("a", "t", "b"),
            entries=(eb("x", (), "a"), eb("e", (), "t"), eb("y", (), "b")),
        )
        reduced = reduce_binding(binding, frozenset(), frozenset())
        assert reduced.singleton_map() == {"x": "a", "e": "t", "y": "b"}
        assert reduced.groups == ()

    def test_group_collects_in_iteration_order(self):
        binding = PathBinding(
            elements=("a", "t1", "b", "t2", "c"),
            entries=(
                eb("e", ((1, 1),), "t1"),
                eb("e", ((1, 2),), "t2"),
            ),
        )
        reduced = reduce_binding(binding, frozenset({"e"}), frozenset())
        assert reduced.group_map() == {"e": ("t1", "t2")}

    def test_anonymous_dropped(self):
        binding = PathBinding(
            elements=("a",),
            entries=(eb("__n1", (), "a"), eb("x", (), "a")),
        )
        reduced = reduce_binding(binding, frozenset(), frozenset({"__n1"}))
        assert reduced.singleton_map() == {"x": "a"}

    def test_paper_reduction_merges_variants(self):
        # Section 6.5: two rigid patterns differing only in anonymous
        # variables reduce to the same binding.
        left = PathBinding(
            elements=("a4", "li4", "c2"),
            entries=(eb("a", (), "a4"), eb("__e1", (), "li4"), eb("c", (), "c2")),
        )
        right = PathBinding(
            elements=("a4", "li4", "c2"),
            entries=(eb("a", (), "a4"), eb("__e2", (), "li4"), eb("c", (), "c2")),
        )
        anon = frozenset({"__e1", "__e2"})
        reduced = [
            reduce_binding(left, frozenset(), anon),
            reduce_binding(right, frozenset(), anon),
        ]
        assert len(deduplicate(reduced)) == 1


class TestDeduplication:
    def test_keeps_first_occurrence_order(self):
        r1 = ReducedBinding(("a",), (("x", "a"),), ())
        r2 = ReducedBinding(("b",), (("x", "b"),), ())
        assert deduplicate([r1, r2, r1, r2, r1]) == [r1, r2]

    def test_bag_tags_keep_copies_apart(self):
        base = dict(elements=("a",), singletons=(("x", "a"),), groups=())
        plain = ReducedBinding(**base)
        tagged = ReducedBinding(**base, bag_tags=frozenset({(1, 0, ())}))
        assert len(deduplicate([plain, tagged])) == 2

    def test_same_tag_still_dedups(self):
        base = dict(
            elements=("a",),
            singletons=(("x", "a"),),
            groups=(),
            bag_tags=frozenset({(1, 0, ())}),
        )
        assert len(deduplicate([ReducedBinding(**base), ReducedBinding(**base)])) == 1

    def test_different_variable_maps_not_merged(self):
        r1 = ReducedBinding(("a",), (("x", "a"),), ())
        r2 = ReducedBinding(("a",), (("y", "a"),), ())
        assert len(deduplicate([r1, r2])) == 2


class TestAccessors:
    def test_endpoints_and_length(self):
        reduced = ReducedBinding(("a", "t", "b", "u", "c"), (), ())
        assert reduced.source_id == "a"
        assert reduced.target_id == "c"
        assert reduced.length == 2

    def test_sort_key_orders_by_length_first(self):
        short = ReducedBinding(("a",), (), ())
        long = ReducedBinding(("a", "t", "b"), (), ())
        assert sorted([long, short], key=lambda r: r.sort_key())[0] is short

    def test_strip_bag_tags(self):
        tagged = ReducedBinding(("a",), (), (), bag_tags=frozenset({(1, 0, ())}))
        stripped = strip_bag_tags(tagged)
        assert stripped.bag_tags == frozenset()
        plain = ReducedBinding(("a",), (), ())
        assert strip_bag_tags(plain) is plain
