"""Unit tests for value expressions: 3VL, aggregates, graphical predicates."""

import pytest

from repro.errors import ExpressionError
from repro.gpml.expr import EvalContext, conjoin
from repro.gpml.parser import parse_expression
from repro.values import FALSE, NULL, TRUE, UNKNOWN, is_null


def ev(text, bindings=None, graph=None):
    return parse_expression(text).evaluate(EvalContext(bindings or {}, graph=graph))


def tv(text, bindings=None, graph=None):
    return parse_expression(text).truth(EvalContext(bindings or {}, graph=graph))


class TestLiteralsAndArithmetic:
    def test_literals(self):
        assert ev("42") == 42
        assert ev("'hi'") == "hi"
        assert ev("TRUE") is True
        assert ev("FALSE") is False
        assert ev("NULL") is None

    def test_arithmetic(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("(1 + 2) * 3") == 9
        assert ev("7 / 2") == 3.5
        assert ev("-(3 - 5)") == 2

    def test_null_propagation(self):
        assert is_null(ev("1 + NULL"))
        assert is_null(ev("-x.a", {}))

    def test_division_by_zero_is_null(self):
        assert is_null(ev("1 / 0"))

    def test_string_concat(self):
        assert ev("'a' + 'b'") == "ab"

    def test_type_error(self):
        with pytest.raises(ExpressionError):
            ev("'a' * 2")


class TestPropertyAccess:
    def test_property_on_element(self, fig1):
        ctx = EvalContext({"x": fig1.node("a1")}, graph=fig1)
        assert parse_expression("x.owner").evaluate(ctx) == "Scott"

    def test_missing_property_is_null(self, fig1):
        ctx = EvalContext({"x": fig1.node("a1")}, graph=fig1)
        assert is_null(parse_expression("x.nothing").evaluate(ctx))

    def test_unbound_variable_is_null(self):
        assert is_null(ev("x.owner"))

    def test_group_var_as_singleton_is_error(self, fig1):
        ctx = EvalContext({"e": [fig1.edge("t1")]}, graph=fig1)
        with pytest.raises(ExpressionError):
            parse_expression("e.amount").evaluate(ctx)


class TestThreeValuedLogic:
    def test_where_semantics_unknown_drops(self):
        # y unbound: y.isBlocked = 'yes' is UNKNOWN, OR TRUE rescues it
        assert tv("y.isBlocked = 'yes' OR TRUE") is TRUE
        assert tv("y.isBlocked = 'yes' AND TRUE") is UNKNOWN
        assert tv("NOT (y.isBlocked = 'yes')") is UNKNOWN

    def test_paper_conditional_example(self, fig1):
        # WHERE y.isBlocked='yes' OR p.isBlocked='yes' with p unbound:
        # truth depends entirely on y (Section 4.6).
        blocked = EvalContext({"y": fig1.node("a4")}, graph=fig1)
        open_ = EvalContext({"y": fig1.node("a1")}, graph=fig1)
        cond = parse_expression("y.isBlocked='yes' OR p.isBlocked='yes'")
        assert cond.truth(blocked) is TRUE
        assert cond.truth(open_) is UNKNOWN

    def test_is_null(self):
        assert tv("x IS NULL") is TRUE
        assert tv("x IS NOT NULL") is FALSE
        assert tv("1 IS NULL") is FALSE


class TestGraphicalPredicates:
    def test_is_directed(self, fig1):
        ctx = EvalContext({"e": fig1.edge("t1"), "u": fig1.edge("hp1")}, graph=fig1)
        assert parse_expression("e IS DIRECTED").truth(ctx) is TRUE
        assert parse_expression("u IS DIRECTED").truth(ctx) is FALSE
        assert parse_expression("u IS NOT DIRECTED").truth(ctx) is TRUE

    def test_is_directed_null(self, fig1):
        assert parse_expression("e IS DIRECTED").truth(EvalContext({}, graph=fig1)) is UNKNOWN

    def test_source_and_destination(self, fig1):
        ctx = EvalContext(
            {"s": fig1.node("a1"), "d": fig1.node("a3"), "e": fig1.edge("t1")},
            graph=fig1,
        )
        assert parse_expression("s IS SOURCE OF e").truth(ctx) is TRUE
        assert parse_expression("d IS SOURCE OF e").truth(ctx) is FALSE
        assert parse_expression("d IS DESTINATION OF e").truth(ctx) is TRUE
        assert parse_expression("s IS NOT DESTINATION OF e").truth(ctx) is TRUE

    def test_undirected_edge_has_no_source(self, fig1):
        ctx = EvalContext(
            {"s": fig1.node("a1"), "e": fig1.edge("hp1")}, graph=fig1
        )
        assert parse_expression("s IS SOURCE OF e").truth(ctx) is FALSE

    def test_same(self, fig1):
        ctx = EvalContext(
            {"p": fig1.node("a1"), "q": fig1.node("a1"), "r": fig1.node("a2")},
            graph=fig1,
        )
        assert parse_expression("SAME(p, q)").truth(ctx) is TRUE
        assert parse_expression("SAME(p, q, r)").truth(ctx) is FALSE
        assert parse_expression("SAME(p, missing)").truth(ctx) is UNKNOWN

    def test_all_different(self, fig1):
        ctx = EvalContext(
            {"p": fig1.node("a1"), "q": fig1.node("a2"), "r": fig1.node("a1")},
            graph=fig1,
        )
        assert parse_expression("ALL_DIFFERENT(p, q)").truth(ctx) is TRUE
        assert parse_expression("ALL_DIFFERENT(p, q, r)").truth(ctx) is FALSE


class TestAggregates:
    def test_horizontal_aggregates(self, fig1):
        edges = [fig1.edge("t1"), fig1.edge("t2"), fig1.edge("t3")]
        ctx = EvalContext({"e": edges}, graph=fig1)
        assert parse_expression("COUNT(e)").evaluate(ctx) == 3
        assert parse_expression("COUNT(e.*)").evaluate(ctx) == 3
        assert parse_expression("SUM(e.amount)").evaluate(ctx) == 28_000_000
        assert parse_expression("AVG(e.amount)").evaluate(ctx) == pytest.approx(28_000_000 / 3)
        assert parse_expression("MIN(e.amount)").evaluate(ctx) == 8_000_000
        assert parse_expression("MAX(e.amount)").evaluate(ctx) == 10_000_000

    def test_count_distinct(self, fig1):
        edges = [fig1.edge("t1"), fig1.edge("t1"), fig1.edge("t2")]
        ctx = EvalContext({"e": edges}, graph=fig1)
        assert parse_expression("COUNT(e)").evaluate(ctx) == 3
        assert parse_expression("COUNT(DISTINCT e)").evaluate(ctx) == 2

    def test_pgql_trail_idiom(self, fig1):
        # WHERE COUNT(e) = COUNT(DISTINCT e) filters repeated edges (§3)
        trail = EvalContext({"e": [fig1.edge("t1"), fig1.edge("t2")]}, graph=fig1)
        not_trail = EvalContext({"e": [fig1.edge("t1"), fig1.edge("t1")]}, graph=fig1)
        cond = parse_expression("COUNT(e) = COUNT(DISTINCT e)")
        assert cond.truth(trail) is TRUE
        assert cond.truth(not_trail) is FALSE

    def test_empty_group(self):
        ctx = EvalContext({"e": []})
        assert parse_expression("COUNT(e)").evaluate(ctx) == 0
        assert is_null(parse_expression("SUM(e.amount)").evaluate(ctx))

    def test_singleton_treated_as_one_element_group(self, fig1):
        ctx = EvalContext({"e": fig1.edge("t1")}, graph=fig1)
        assert parse_expression("COUNT(e)").evaluate(ctx) == 1
        assert parse_expression("SUM(e.amount)").evaluate(ctx) == 8_000_000

    def test_listagg(self, fig1):
        edges = [fig1.edge("t1"), fig1.edge("t2")]
        ctx = EvalContext({"e": edges}, graph=fig1)
        assert parse_expression("LISTAGG(e, ', ')").evaluate(ctx) == "t1, t2"

    def test_nulls_ignored(self, fig1):
        elements = [fig1.node("a1"), fig1.node("c1")]  # c1 has no owner
        ctx = EvalContext({"x": elements}, graph=fig1)
        assert parse_expression("COUNT(x.owner)").evaluate(ctx) == 1


class TestFunctions:
    def test_path_functions(self, fig1):
        from repro.graph import Path

        p = Path.from_element_ids(fig1, ("a6", "t5", "a3", "t2", "a2"))
        ctx = EvalContext({"p": p}, graph=fig1)
        assert parse_expression("length(p)").evaluate(ctx) == 2
        assert [n.id for n in parse_expression("nodes(p)").evaluate(ctx)] == ["a6", "a3", "a2"]
        assert [e.id for e in parse_expression("edges(p)").evaluate(ctx)] == ["t5", "t2"]

    def test_coalesce(self):
        assert ev("coalesce(x.a, 'fallback')") == "fallback"
        assert ev("coalesce(NULL, 1, 2)") == 1

    def test_misc(self, fig1):
        ctx = EvalContext({"x": fig1.node("a1")}, graph=fig1)
        assert parse_expression("upper(x.owner)").evaluate(ctx) == "SCOTT"
        assert parse_expression("id(x)").evaluate(ctx) == "a1"
        assert ev("abs(0 - 4)") == 4

    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            ev("frobnicate(1)")


class TestHelpers:
    def test_conjoin(self):
        a, b = parse_expression("1 = 1"), parse_expression("2 = 2")
        assert conjoin() is None
        assert conjoin(None, a) is a
        both = conjoin(a, None, b)
        assert both.truth(EvalContext({})) is TRUE

    def test_variables_collection(self):
        expr = parse_expression("x.a > 1 AND SUM(e.amount) > COUNT(y)")
        assert expr.variables() == {"x", "e", "y"}
        assert expr.aggregated_variables() == {"e", "y"}
