"""Error reporting quality: positions, messages, exception taxonomy."""

import pytest

from repro.errors import (
    ConditionalJoinError,
    GpmlAnalysisError,
    GpmlError,
    GpmlSyntaxError,
    NonTerminationError,
    ReproError,
    VariableScopeError,
)
from repro.gpml import match, prepare
from repro.gpml.parser import parse_match


class TestSyntaxErrorPositions:
    def test_position_in_message(self):
        with pytest.raises(GpmlSyntaxError) as err:
            parse_match("MATCH (x")
        assert "line 1" in str(err.value)
        assert "column" in str(err.value)

    def test_multiline_position(self):
        with pytest.raises(GpmlSyntaxError) as err:
            parse_match("MATCH (a)->(b)\n  WHERE a.x = ")
        assert "line 2" in str(err.value)

    @pytest.mark.parametrize(
        "query, fragment",
        [
            ("MATCH", "expected a pattern element"),
            ("MATCH (a) WHERE", "expected an expression"),
            ("MATCH (a)-[e]>(b)", "expected"),
            ("MATCH ALL (a)->(b)", "expected SHORTEST"),
            ("MATCH SHORTEST (a)->(b)", "expected integer"),
            ("MATCH (a){1,2}", "cannot be applied to a node pattern"),
            ("MATCH -[e]->{2,5}?", "unexpected trailing input"),
            ("MATCH (a) extra", "unexpected trailing input"),
        ],
    )
    def test_messages_are_specific(self, query, fragment):
        with pytest.raises(GpmlSyntaxError) as err:
            parse_match(query)
        assert fragment in str(err.value)


class TestExceptionTaxonomy:
    def test_hierarchy(self):
        assert issubclass(GpmlSyntaxError, GpmlError)
        assert issubclass(NonTerminationError, GpmlAnalysisError)
        assert issubclass(ConditionalJoinError, GpmlAnalysisError)
        assert issubclass(VariableScopeError, GpmlAnalysisError)
        assert issubclass(GpmlError, ReproError)

    def test_one_catch_all(self, fig1):
        for bad in [
            "MATCH (x",
            "MATCH (a)->*(b)",
            "MATCH [(x)->(y)] | [(x)->(z)], (y)->(w)",
            "MATCH (x) WHERE nosuch.a = 1",
        ]:
            with pytest.raises(ReproError):
                match(fig1, bad)

    def test_analysis_errors_at_prepare_time(self):
        # legality is static: no graph needed to reject
        with pytest.raises(NonTerminationError):
            prepare("MATCH (a)->*(b)")
        with pytest.raises(VariableScopeError):
            prepare("MATCH (x)-[x]->(y)")


class TestHostErrorPropagation:
    def test_gql_inherits_pattern_errors(self, fig1):
        from repro.gql import GqlSession

        session = GqlSession(fig1)
        with pytest.raises(NonTerminationError):
            session.execute("MATCH (a)-[e]->*(b) RETURN a")

    def test_pgq_inherits_pattern_errors(self, fig1):
        from repro.pgq import graph_table

        with pytest.raises(NonTerminationError):
            graph_table(fig1, "MATCH (a)-[e]->*(b) COLUMNS (a)")

    def test_gql_unknown_return_variable(self, fig1):
        from repro.gql import GqlSession

        session = GqlSession(fig1)
        # unknown variables in RETURN evaluate to NULL (SQL-style), they
        # do not crash — the pattern-level analysis only governs WHERE
        result = session.execute("MATCH (a:City) RETURN missing")
        assert len(result) == 1
