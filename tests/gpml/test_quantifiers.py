"""Figure 6 behaviour: quantifiers on edges and parenthesized patterns."""

import pytest

from repro.datasets import chain_graph, cycle_graph
from repro.gpml import match


class TestBoundedQuantifiers:
    def test_range_on_chain(self):
        g = chain_graph(6)
        # windows of length 2..4 in a 6-edge chain: 5 + 4 + 3
        result = match(g, "MATCH (a)-[e:E]->{2,4}(b)")
        assert len(result) == 12
        lengths = sorted(row.paths[0].length for row in result)
        assert lengths.count(2) == 5 and lengths.count(3) == 4 and lengths.count(4) == 3

    def test_exact_count(self):
        g = chain_graph(5)
        result = match(g, "MATCH (a)->{5}(b)")
        assert len(result) == 1
        assert result.rows[0].paths[0].length == 5

    def test_zero_lower_bound_includes_empty(self):
        g = chain_graph(2)
        result = match(g, "MATCH (a)->{0,1}(b)")
        # 3 zero-length (one per node) + 2 single edges
        assert len(result) == 5

    def test_quantifier_on_paren_with_prefilter(self, fig1):
        # Section 4.4: pairs of accounts with equal owners along the way —
        # no two accounts share an owner in Figure 1, so only... the WHERE
        # applies per iteration.
        result = match(
            fig1,
            "MATCH [(a:Account)-[:Transfer]->(b:Account) WHERE a.owner=b.owner]{2,5}",
        )
        assert len(result) == 0

    def test_group_variable_collects_iterations(self, fig1):
        result = match(fig1, "MATCH (a WHERE a.owner='Scott')-[e:Transfer]->{2,2}(b)")
        assert len(result) == 2  # a1-t1-a3 then t2->a2 or t7->a5
        for row in result:
            ids = [edge.id for edge in row["e"]]
            assert ids[0] == "t1"
            assert len(ids) == 2

    def test_sum_over_group(self, fig1):
        # Section 4.4's total-value example, bounded version.
        result = match(
            fig1,
            "MATCH (a:Account) [()-[t:Transfer]->() WHERE t.amount>1M]{2,5} (b:Account)"
            " WHERE SUM(t.amount)>10M",
        )
        assert len(result) > 0
        for row in result:
            assert sum(e["amount"] for e in row["t"]) > 10_000_000
            assert all(e["amount"] > 1_000_000 for e in row["t"])


class TestUnboundedQuantifiers:
    def test_star_with_trail_on_cycle(self):
        g = cycle_graph(3)
        result = match(g, "MATCH TRAIL (a WHERE a.index=0)-[e:E]->*(b)")
        # from n0: lengths 0..3 (the trail cannot reuse an edge)
        assert sorted(row.paths[0].length for row in result) == [0, 1, 2, 3]

    def test_plus_requires_one(self):
        g = cycle_graph(3)
        result = match(g, "MATCH TRAIL (a WHERE a.index=0)-[e:E]->+(b)")
        assert sorted(row.paths[0].length for row in result) == [1, 2, 3]

    def test_open_range_lower_bound(self):
        g = chain_graph(4)
        result = match(g, "MATCH TRAIL (a WHERE a.index=0)->{2,}(b)")
        assert sorted(row.paths[0].length for row in result) == [2, 3, 4]

    def test_nested_quantifiers(self):
        # the Section 7.1 LO shape [[(p)->(q)]* ->(r)]* parses and runs
        g = chain_graph(3)
        result = match(g, "MATCH TRAIL (s WHERE s.index=0) [[(p)->(q)]{1,2} ->]{1,2} (r)")
        assert len(result) > 0
        # total edges: iterations of (inner{1,2} + 1 edge), 1..2 outer
        for row in result:
            assert 2 <= row.paths[0].length <= 6


class TestPaperEquivalences:
    def test_overlapping_union_equals_merged_range(self, fig1):
        # Section 4.5: ->{1,5} | ->{3,7} deduplicates to ->{1,7}
        union = match(fig1, "MATCH p = ->{1,5} | ->{3,7}")
        merged = match(fig1, "MATCH p = ->{1,7}")
        assert sorted(str(p) for p in union.paths()) == sorted(
            str(p) for p in merged.paths()
        )

    def test_star_equals_zero_open(self):
        g = chain_graph(3)
        star = match(g, "MATCH TRAIL p = (a)->*(b)")
        explicit = match(g, "MATCH TRAIL p = (a)->{0,}(b)")
        assert sorted(str(p) for p in star.paths()) == sorted(
            str(p) for p in explicit.paths()
        )

    def test_plus_equals_one_open(self):
        g = chain_graph(3)
        plus = match(g, "MATCH TRAIL p = (a)->+(b)")
        explicit = match(g, "MATCH TRAIL p = (a)->{1,}(b)")
        assert sorted(str(p) for p in plus.paths()) == sorted(
            str(p) for p in explicit.paths()
        )

    def test_transfer_chain_2_to_5(self, fig1):
        # Section 4.4's first example.
        result = match(fig1, "MATCH (a:Account)-[:Transfer]->{2,5}(b:Account)")
        assert len(result) > 0
        for row in result:
            assert 2 <= row.paths[0].length <= 5
            assert all(e.has_label("Transfer") for e in row.paths[0].edges)
