"""Figure 5 behaviour: all seven edge-pattern orientations.

Fixture graph: directed d: a->b, undirected u: a~c, directed self-loop on a.
"""

import pytest

from repro.gpml import match


def pairs(graph, query):
    result = match(graph, query)
    return sorted((row["x"].id, row["e"].id, row["y"].id) for row in result)


class TestOrientations:
    def test_pointing_right(self, mixed_graph):
        assert pairs(mixed_graph, "MATCH (x)-[e]->(y)") == [
            ("a", "d", "b"),
            ("a", "loop", "a"),
        ]

    def test_pointing_left(self, mixed_graph):
        assert pairs(mixed_graph, "MATCH (x)<-[e]-(y)") == [
            ("a", "loop", "a"),
            ("b", "d", "a"),
        ]

    def test_undirected(self, mixed_graph):
        assert pairs(mixed_graph, "MATCH (x)~[e]~(y)") == [
            ("a", "u", "c"),
            ("c", "u", "a"),
        ]

    def test_left_or_undirected(self, mixed_graph):
        assert pairs(mixed_graph, "MATCH (x)<~[e]~(y)") == [
            ("a", "loop", "a"),
            ("a", "u", "c"),
            ("b", "d", "a"),
            ("c", "u", "a"),
        ]

    def test_undirected_or_right(self, mixed_graph):
        assert pairs(mixed_graph, "MATCH (x)~[e]~>(y)") == [
            ("a", "d", "b"),
            ("a", "loop", "a"),
            ("a", "u", "c"),
            ("c", "u", "a"),
        ]

    def test_left_or_right(self, mixed_graph):
        assert pairs(mixed_graph, "MATCH (x)<-[e]->(y)") == [
            ("a", "d", "b"),
            ("a", "loop", "a"),
            ("b", "d", "a"),
        ]

    def test_any_direction(self, mixed_graph):
        assert pairs(mixed_graph, "MATCH (x)-[e]-(y)") == [
            ("a", "d", "b"),
            ("a", "loop", "a"),
            ("a", "u", "c"),
            ("b", "d", "a"),
            ("c", "u", "a"),
        ]


class TestAbbreviations:
    @pytest.mark.parametrize(
        "full, abbrev",
        [
            ("(x)-[e]->(y)", "(x)->(y)"),
            ("(x)<-[e]-(y)", "(x)<-(y)"),
            ("(x)~[e]~(y)", "(x)~(y)"),
            ("(x)<~[e]~(y)", "(x)<~(y)"),
            ("(x)~[e]~>(y)", "(x)~>(y)"),
            ("(x)<-[e]->(y)", "(x)<->(y)"),
            ("(x)-[e]-(y)", "(x)-(y)"),
        ],
    )
    def test_abbreviation_equivalence(self, mixed_graph, full, abbrev):
        with_spec = {
            (row["x"].id, row["y"].id) for row in match(mixed_graph, f"MATCH {full}")
        }
        without = {
            (row["x"].id, row["y"].id) for row in match(mixed_graph, f"MATCH {abbrev}")
        }
        assert with_spec == without


class TestPaperStatements:
    def test_undirected_edge_returned_twice_without_direction(self, fig1):
        # Section 4.2: "(x)-[e]-(y) ... each edge will be returned twice,
        # once for each direction in which it is traversed."
        result = match(fig1, "MATCH (x)~[e:hasPhone]~(y)")
        assert len(result) == 12  # 6 undirected edges, twice each

    def test_directed_edge_both_directions_with_dash(self, fig1):
        result = match(fig1, "MATCH (x)-[e:Transfer]-(y)")
        assert len(result) == 16  # 8 directed edges, twice each

    def test_aretha_incoming(self, fig1):
        # Section 4.2 example.
        result = match(fig1, "MATCH (y WHERE y.owner='Aretha')<-[e:Transfer]-(x)")
        assert result.to_dicts() == [{"y": "a2", "e": "t2", "x": "a3"}]

    def test_orientation_postfilter_predicates(self, fig1):
        # e IS DIRECTED distinguishes hasPhone from Transfer under -[e]-
        result = match(
            fig1,
            "MATCH (x)-[e]-(y) WHERE NOT (e IS DIRECTED)",
        )
        assert {row["e"].id for row in result} == {f"hp{i}" for i in range(1, 7)}

    def test_source_of_picks_forward_traversals(self, fig1):
        result = match(
            fig1,
            "MATCH (x)-[e:Transfer]-(y) WHERE x IS SOURCE OF e",
        )
        assert len(result) == 8
        assert all(row["e"].source == row["x"] for row in result)
