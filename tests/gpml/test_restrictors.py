"""Figure 7 behaviour: TRAIL, ACYCLIC, SIMPLE."""

import pytest

from repro.datasets import cycle_graph
from repro.graph import GraphBuilder
from repro.gpml import match


@pytest.fixture()
def theta_graph():
    """Two directed s->t routes plus a back edge t->s (rich cycle mix)."""
    return (
        GraphBuilder("theta")
        .node("s", "N")
        .node("m", "N")
        .node("t", "N")
        .directed("e1", "s", "m", "E")
        .directed("e2", "m", "t", "E")
        .directed("e3", "s", "t", "E")
        .directed("back", "t", "s", "E")
        .build()
    )


def paths_of(graph, query):
    return sorted(str(p) for p in match(graph, query).paths())


class TestTrail:
    def test_no_repeated_edges(self, theta_graph):
        for p in match(theta_graph, "MATCH TRAIL p = (a)-[e]->*(b)").paths():
            assert p.is_trail()

    def test_node_repetition_allowed(self, theta_graph):
        paths = paths_of(theta_graph, "MATCH TRAIL p = (a WHERE a.x IS NULL)->*(b)")
        # s -e3-> t -back-> s -e1-> m -e2-> t revisits s and t: a trail.
        assert "path(s,e3,t,back,s,e1,m,e2,t)" in paths

    def test_paper_dave_to_aretha(self, fig1):
        # Section 5.1: exactly three trails.
        paths = paths_of(
            fig1,
            "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha')",
        )
        assert paths == [
            "path(a6,t5,a3,t2,a2)",
            "path(a6,t5,a3,t7,a5,t8,a1,t1,a3,t2,a2)",
            "path(a6,t6,a5,t8,a1,t1,a3,t2,a2)",
        ]

    def test_undirected_edge_not_reused(self, fig1):
        # an undirected edge cannot be walked back and forth under TRAIL
        result = match(fig1, "MATCH TRAIL (p:Phone)~[e:hasPhone]~()~[f:hasPhone]~(q)")
        for row in result:
            assert row["e"] != row["f"]


class TestAcyclic:
    def test_no_repeated_nodes(self, theta_graph):
        for p in match(theta_graph, "MATCH ACYCLIC p = (a)-[e]->*(b)").paths():
            assert p.is_acyclic()

    def test_paper_trail_vs_acyclic(self, fig1):
        # The third TRAIL result repeats a3 and is dropped by ACYCLIC.
        paths = paths_of(
            fig1,
            "MATCH ACYCLIC p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha')",
        )
        assert paths == [
            "path(a6,t5,a3,t2,a2)",
            "path(a6,t6,a5,t8,a1,t1,a3,t2,a2)",
        ]

    def test_cycle_graph_bounded_by_size(self):
        g = cycle_graph(4)
        result = match(g, "MATCH ACYCLIC p = (a WHERE a.index=0)-[e]->*(b)")
        assert max(p.length for p in result.paths()) == 3


class TestSimple:
    def test_closing_cycle_allowed(self, theta_graph):
        paths = paths_of(theta_graph, "MATCH SIMPLE p = (a)-[e]->*(b)")
        assert "path(s,e3,t,back,s)" in paths
        assert "path(s,e1,m,e2,t,back,s)" in paths

    def test_interior_repeat_rejected(self, theta_graph):
        for p in match(theta_graph, "MATCHSIMPLE p = (a)->*(b)".replace("MATCHSIMPLE", "MATCH SIMPLE ")).paths():
            assert p.is_simple()

    def test_nothing_after_closing(self, theta_graph):
        # once a SIMPLE path closes its cycle it cannot continue
        paths = paths_of(theta_graph, "MATCH SIMPLE p = (a)-[e]->*(b)")
        for text in paths:
            closed_prefix = "path(s,e3,t,back,s,"
            assert not text.startswith(closed_prefix)

    def test_full_cycle(self):
        g = cycle_graph(3)
        paths = paths_of(g, "MATCH SIMPLE p = (a WHERE a.index=0)-[e]->*(b)")
        assert "path(n0,e0,n1,e1,n2,e2,n0)" in paths


class TestRestrictorScoping:
    def test_paren_restrictor_scopes_subpattern(self, fig1):
        # each [TRAIL ...] instance is a trail on its own; the two
        # instances may reuse each other's edges.
        result = match(
            fig1,
            "MATCH (a WHERE a.owner='Mike') [TRAIL -[:Transfer]->+] "
            "(m WHERE m.owner='Charles') [TRAIL -[:Transfer]->+] (b)",
        )
        assert len(result) > 0

    def test_path_restrictor_spans_whole_pattern(self, fig1):
        # Section 5.1 second example: no whole-path trail exists from
        # Charles through Mike to Scott without reusing t8.
        result = match(
            fig1,
            "MATCH TRAIL (p:Account WHERE p.owner='Charles')->{1,10}"
            "(q:Account WHERE q.owner='Mike')->{1,10}"
            "(r:Account WHERE r.owner='Scott')",
        )
        assert len(result) == 0

    def test_selector_instead_still_has_result(self, fig1):
        # ... whereas ALL SHORTEST keeps the t8-repeating solution.
        result = match(
            fig1,
            "MATCH ALL SHORTEST p = (p1:Account WHERE p1.owner='Charles')->{1,10}"
            "(q:Account WHERE q.owner='Mike')->{1,10}"
            "(r:Account WHERE r.owner='Scott')",
        )
        paths = [str(p) for p in result.paths()]
        assert "path(a5,t8,a1,t1,a3,t7,a5,t8,a1)" in paths
