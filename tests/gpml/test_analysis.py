"""Unit tests for static analysis: classification, legality, termination."""

import pytest

from repro.errors import (
    ConditionalJoinError,
    NonTerminationError,
    VariableScopeError,
)
from repro.gpml.analysis import analyze
from repro.gpml.normalize import normalize_graph_pattern
from repro.gpml.parser import parse_match


def analyzed(text):
    return analyze(normalize_graph_pattern(parse_match(text)))


class TestVariableClassification:
    def test_singletons(self):
        analysis = analyzed("MATCH (x)-[e]->(y)")
        vars_ = analysis.paths[0].vars
        assert vars_["x"].kind == "node" and not vars_["x"].group
        assert vars_["e"].kind == "edge" and not vars_["e"].conditional

    def test_group_variables_cross_quantifier(self):
        # Section 4.4: b under a quantifier is a group variable.
        analysis = analyzed(
            "MATCH TRAIL (a) [-[b:Transfer]->]+ (a)"
        )
        vars_ = analysis.paths[0].vars
        assert vars_["b"].group
        assert not vars_["a"].group
        assert "b" in analysis.paths[0].group_vars

    def test_conditional_from_union(self):
        # Section 4.6: x unconditional, y and z conditional.
        analysis = analyzed("MATCH [(x)->(y)] | [(x)->(z)]")
        vars_ = analysis.paths[0].vars
        assert not vars_["x"].conditional
        assert vars_["y"].conditional
        assert vars_["z"].conditional

    def test_conditional_from_question_mark(self):
        analysis = analyzed("MATCH (x) [->(y)]?")
        vars_ = analysis.paths[0].vars
        assert vars_["y"].conditional
        assert not vars_["y"].group  # '?' exposes conditional singletons

    def test_question_mark_differs_from_01_quantifier(self):
        # {0,1} exposes variables as group instead (Section 4.6).
        analysis = analyzed("MATCH (x) [->(y)]{0,1}")
        assert analysis.paths[0].vars["y"].group

    def test_bound_in_all_branches_is_unconditional(self):
        analysis = analyzed("MATCH (c:City) | (c:Country)")
        assert not analysis.paths[0].vars["c"].conditional

    def test_visible_vars_hide_anonymous(self):
        analysis = analyzed("MATCH ()-[e]->()")
        assert analysis.paths[0].visible_vars == ["e"]


class TestLegality:
    def test_node_and_edge_conflict(self):
        with pytest.raises(VariableScopeError):
            analyzed("MATCH (x)-[x]->(y)")

    def test_conflicting_quantifier_depths(self):
        with pytest.raises(VariableScopeError):
            analyzed("MATCH TRAIL (a) [(a)-[e:T]->(b)]+ (c)")

    def test_conditional_join_across_paths_rejected(self):
        # the paper's illegal query (Section 4.6)
        with pytest.raises(ConditionalJoinError):
            analyzed("MATCH [(x)->(y)] | [(x)->(z)], (y)->(w)")

    def test_conditional_join_within_path_rejected(self):
        # y is conditional in both optionals and the contexts can be
        # active together: the join's semantics would be ambiguous.
        with pytest.raises(ConditionalJoinError):
            analyzed("MATCH (x) [->(y)]? [~(y)]?")

    def test_outer_declaration_makes_join_unconditional(self):
        # y is bound unconditionally by the trailing pattern part, so the
        # join with the optional's y is well-defined and legal.
        analysis = analyzed("MATCH (x) [->(y)]? (z)->(y)")
        assert not analysis.paths[0].vars["y"].conditional

    def test_unconditional_join_across_paths_ok(self):
        analysis = analyzed("MATCH (x)->(y), (y)->(z)")
        assert analysis.join_vars == {"y"}

    def test_repetition_within_one_branch_ok(self):
        # triangles: (s)...(s) is a legal implicit equi-join
        analysis = analyzed("MATCH (s)->(s1)->(s2)->(s)")
        assert not analysis.paths[0].vars["s"].conditional

    def test_group_var_cannot_join_paths(self):
        with pytest.raises(VariableScopeError):
            analyzed("MATCH TRAIL (a)[-[e:T]->]+(b), (x)-[e]->(y)")

    def test_node_edge_conflict_across_paths(self):
        with pytest.raises(VariableScopeError):
            analyzed("MATCH (x)-[e]->(y), (e)->(z)")

    def test_unknown_var_in_where(self):
        with pytest.raises(VariableScopeError):
            analyzed("MATCH (x) WHERE nosuch.prop = 1")
        with pytest.raises(VariableScopeError):
            analyzed("MATCH (x WHERE nosuch.prop = 1)")

    def test_path_variable_clash(self):
        with pytest.raises(VariableScopeError):
            analyzed("MATCH x = (x)->(y)")
        with pytest.raises(VariableScopeError):
            analyzed("MATCH p = (a)->(b), p = (c)->(d)")

    def test_group_var_as_singleton_in_postfilter(self):
        with pytest.raises(VariableScopeError):
            analyzed("MATCH TRAIL (a)[-[e:T]->]+(b) WHERE e.amount > 1")

    def test_group_var_aggregate_in_postfilter_ok(self):
        analysis = analyzed("MATCH TRAIL (a)[-[e:T]->]+(b) WHERE SUM(e.amount) > 1")
        assert analysis is not None

    def test_same_requires_unconditional_singletons(self):
        with pytest.raises(VariableScopeError):
            analyzed("MATCH (x) [->(y)]? WHERE SAME(x, y)")
        with pytest.raises(VariableScopeError):
            analyzed("MATCH TRAIL (a)[-[e:T]->]+(b) WHERE SAME(a, e)")


class TestTermination:
    def test_uncovered_unbounded_rejected(self):
        # Section 5: the motivating non-terminating query.
        with pytest.raises(NonTerminationError):
            analyzed("MATCH (a)-[t:Transfer]->*(b)")

    def test_restrictor_covers(self):
        assert analyzed("MATCH TRAIL (a)-[t:Transfer]->*(b)")

    def test_selector_covers(self):
        assert analyzed("MATCH ANY SHORTEST (a)-[t:Transfer]->*(b)")

    def test_paren_restrictor_covers_inside_only(self):
        # inner * is covered; the outer {1,} applied to the TRAIL paren
        # is NOT covered by the inner restrictor.
        with pytest.raises(NonTerminationError):
            analyzed("MATCH (a) [TRAIL ->+]{1,} (b)")

    def test_paren_restrictor_covering_inner(self):
        assert analyzed("MATCH (a) [TRAIL ->*] (b)")

    def test_bounded_quantifier_needs_nothing(self):
        assert analyzed("MATCH (a)-[t:Transfer]->{2,5}(b)")

    def test_open_lower_bound_unbounded(self):
        with pytest.raises(NonTerminationError):
            analyzed("MATCH (a)->{3,}(b)")


class TestSection53AggregateRules:
    def test_unbounded_group_aggregate_in_prefilter_rejected(self):
        # the paper's Section 5.3 example
        with pytest.raises(NonTerminationError):
            analyzed(
                "MATCH ALL SHORTEST [ (x)-[e]->*(y) "
                "WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1 ]"
            )

    def test_postfilter_variant_accepted(self):
        assert analyzed(
            "MATCH ALL SHORTEST (x)-[e]->*(y) "
            "WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1"
        )

    def test_restrictor_inside_paren_makes_it_legal(self):
        assert analyzed(
            "MATCH ALL SHORTEST [ TRAIL (x)-[e]->*(y) "
            "WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1 ]"
        )

    def test_static_upper_bound_makes_it_legal(self):
        assert analyzed(
            "MATCH ALL SHORTEST [ (x)-[e]->{0,10}(y) "
            "WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1 ]"
        )

    def test_group_var_as_singleton_in_prefilter_rejected(self):
        with pytest.raises(VariableScopeError):
            analyzed("MATCH TRAIL [ (x)-[e]->*(y) WHERE e.amount > 1 ]")

    def test_iteration_local_reference_is_singleton(self):
        # references inside the quantifier's own iteration do not cross it
        assert analyzed(
            "MATCH (a) [()-[t:Transfer]->() WHERE t.amount>1M]{2,5} (b)"
        )


class TestStrategySelection:
    @pytest.mark.parametrize(
        "query, strategy",
        [
            ("MATCH (a)->(b)", "enumerate"),
            ("MATCH TRAIL (a)->*(b)", "enumerate"),
            ("MATCH ANY SHORTEST (a)->*(b)", "shortest"),
            ("MATCH ALL SHORTEST (a)->*(b)", "shortest"),
            ("MATCH ANY (a)->*(b)", "shortest"),
            ("MATCH ANY 3 (a)->*(b)", "k_search"),
            ("MATCH SHORTEST 2 (a)->*(b)", "k_search"),
            ("MATCH SHORTEST 2 GROUP (a)->*(b)", "k_search"),
            ("MATCH ANY CHEAPEST (a)->*(b)", "cheapest"),
            ("MATCH TOP 3 CHEAPEST (a)->*(b)", "cheapest"),
        ],
    )
    def test_strategy(self, query, strategy):
        assert analyzed(query).paths[0].strategy == strategy

    def test_multiset_flag(self):
        assert analyzed("MATCH (a) |+| (b)").paths[0].has_multiset
        assert not analyzed("MATCH (a) | (b)").paths[0].has_multiset
