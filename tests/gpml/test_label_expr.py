"""Unit tests for label expressions (Section 4.1)."""

import pytest

from repro.gpml.label_expr import LabelAnd, LabelAtom, LabelNot, LabelOr, LabelWildcard
from repro.gpml.parser import GpmlParser


def parse_labels(text):
    parser = GpmlParser(text)
    expr = parser.parse_label_expression()
    parser.expect_eof()
    return expr


class TestMatching:
    def test_atom(self):
        assert LabelAtom("Account").matches(frozenset({"Account", "Vip"}))
        assert not LabelAtom("Account").matches(frozenset({"City"}))

    def test_wildcard_requires_some_label(self):
        assert LabelWildcard().matches(frozenset({"X"}))
        assert not LabelWildcard().matches(frozenset())

    def test_not_wildcard_means_unlabeled(self):
        # the paper's (:!%) example
        expr = parse_labels("!%")
        assert expr.matches(frozenset())
        assert not expr.matches(frozenset({"X"}))

    def test_conjunction(self):
        expr = parse_labels("City&Country")
        assert expr.matches(frozenset({"City", "Country"}))
        assert not expr.matches(frozenset({"City"}))

    def test_disjunction(self):
        expr = parse_labels("Account|IP")
        assert expr.matches(frozenset({"IP"}))
        assert expr.matches(frozenset({"Account"}))
        assert not expr.matches(frozenset({"Phone"}))

    def test_negation(self):
        expr = parse_labels("!Account")
        assert expr.matches(frozenset({"City"}))
        assert expr.matches(frozenset())
        assert not expr.matches(frozenset({"Account"}))

    def test_precedence_not_over_and_over_or(self):
        # !A&B|C parses as ((!A)&B)|C
        expr = parse_labels("!A&B|C")
        assert isinstance(expr, LabelOr)
        assert expr.matches(frozenset({"C"}))
        assert expr.matches(frozenset({"B"}))
        assert not expr.matches(frozenset({"A", "B"}))

    def test_grouping(self):
        expr = parse_labels("!(A|B)")
        assert expr.matches(frozenset({"C"}))
        assert not expr.matches(frozenset({"A"}))
        assert not expr.matches(frozenset({"B"}))


class TestStructure:
    def test_referenced_labels(self):
        expr = parse_labels("(A|B)&!C")
        assert expr.referenced_labels() == {"A", "B", "C"}
        assert parse_labels("%").referenced_labels() == frozenset()

    def test_str_round_trip(self):
        for text in ["A", "%", "!A", "A&B", "A|B", "(A|B)&C", "!(A&B)"]:
            expr = parse_labels(text)
            again = parse_labels(str(expr))
            assert str(again) == str(expr)

    def test_engine_integration(self, fig1):
        from repro.gpml import match

        # conjunction: only c2 carries both City and Country
        assert match(fig1, "MATCH (c:City&Country)").ids("c") == ["c2"]
        # negated conjunction over accounts-or-ips
        result = match(fig1, "MATCH (x:Account|IP)")
        assert len(result) == 8
        # nothing is unlabeled in figure 1
        assert len(match(fig1, "MATCH (x:!%)")) == 0
