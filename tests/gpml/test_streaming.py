"""The streaming execution pipeline: match_iter, budgets, early termination.

Three contracts under test:

1. **Equivalence** — for a corpus spanning every engine feature,
   ``list(match_iter(...))`` equals ``match(...).rows`` row for row, in
   the same order, and ``islice(match_iter(...), k)`` is exactly the
   first k rows of the materialized result.
2. **Budget semantics** — the error-raising safety budgets
   (``max_steps`` / ``max_results``) must not fire for a LIMIT-satisfied
   query that stopped early, and must still fire for exhaustive runs.
3. **Early termination is real** — ``limit=1`` / ``exists()`` examine a
   small fraction of the search space, asserted on matcher step counters
   (not wall-clock).
"""

from itertools import islice

import pytest

from repro.datasets.generators import random_transfer_network
from repro.errors import BudgetExceededError
from repro.gpml import PipelineStats, match, match_iter, prepare
from repro.gpml.engine import exists, first
from repro.gpml.explain import explain, explain_plan
from repro.gpml.matcher import MatcherConfig
from repro.extensions.match_modes import iter_edge_isomorphic, iter_node_isomorphic


#: one query per engine feature: plain enumeration, quantifiers,
#: restrictors, every selector family, cheapest, multiset alternation,
#: optional patterns, multi-pattern joins, postfilters, and KEEP.
CORPUS = [
    "MATCH (x:Account WHERE x.isBlocked='no')",
    "MATCH (a)-[e]->(b)",
    "MATCH (a:Account)-[t:Transfer]->(b:Account)-[u:Transfer]->(c)",
    "MATCH (a)-[e:Transfer]->{1,3}(b)",
    "MATCH TRAIL p = (a:Account)-[e:Transfer]->*(b)",
    "MATCH ACYCLIC p = (a)-[:Transfer]->+(b:Account WHERE b.owner='Aretha')",
    "MATCH SIMPLE p = (a:Account)-[:Transfer]->*(b)",
    "MATCH ANY SHORTEST p = (a:Account WHERE a.owner='Jay')-[:Transfer]->*(b:Account)",
    "MATCH ALL SHORTEST p = (a:Account)-[:Transfer]->*(b:Account WHERE b.owner='Mike')",
    "MATCH SHORTEST 2 GROUP p = (a:Account WHERE a.owner='Jay')-[:Transfer]->*(b)",
    "MATCH ANY 2 (a:Account)-[:Transfer]->{1,3}(b)",
    "MATCH SHORTEST 3 (a:Account WHERE a.owner='Scott')-[:Transfer]->+(b)",
    "MATCH ANY CHEAPEST COST amount p = (a:Account)-[:Transfer]->+(b:Account)",
    "MATCH (p:Phone)~[:hasPhone]~(s:Account), (s)-[t:Transfer WHERE t.amount>1M]->(d)",
    "MATCH (c:City), (i:IP)",
    "MATCH (s:Account)-[:signInWithIP]-(), (s)-[t:Transfer WHERE t.amount>1M]->(), "
    "(s)~[:hasPhone]~(p:Phone WHERE p.isBlocked='no')",
    "MATCH (x)-[e:Transfer]->(y) WHERE x.isBlocked='no' AND y.isBlocked='no'",
    "MATCH (x:Account) |+| (x WHERE x.isBlocked='no')",
    "MATCH (x:Account) [-[e:Transfer]->(y)]?",
    "MATCH TRAIL (a)-[:Transfer]->*(b) WHERE a.owner='Scott' KEEP SHORTEST 2",
]


def row_key(row):
    """Order-sensitive canonical form of a BindingRow."""
    return (
        tuple(sorted((k, repr(v)) for k, v in row.values.items())),
        tuple(str(p) for p in row.paths),
    )


class TestStreamingEquivalence:
    @pytest.mark.parametrize("query", CORPUS)
    def test_stream_equals_materialized(self, fig1, query):
        materialized = [row_key(r) for r in match(fig1, query).rows]
        streamed = [row_key(r) for r in match_iter(fig1, query)]
        assert streamed == materialized  # same rows, same order

    @pytest.mark.parametrize("query", CORPUS)
    def test_prefix_equals_limit(self, fig1, query):
        full = [row_key(r) for r in match(fig1, query).rows]
        for k in (0, 1, 2, 5):
            sliced = [row_key(r) for r in islice(match_iter(fig1, query), k)]
            assert sliced == full[:k]
            limited = [row_key(r) for r in match_iter(fig1, query, limit=k)]
            assert limited == full[:k]

    def test_prepared_query_reusable_across_streams(self, fig1):
        prepared = prepare("MATCH (a:Account)-[t:Transfer]->(b)")
        first_run = [row_key(r) for r in match_iter(fig1, prepared)]
        second_run = [row_key(r) for r in match_iter(fig1, prepared)]
        assert first_run == second_run


class TestFirstAndExists:
    def test_first_returns_leading_row(self, fig1):
        query = "MATCH (a:Account)-[t:Transfer]->(b)"
        row = first(fig1, query)
        assert row_key(row) == row_key(match(fig1, query).rows[0])

    def test_first_none_when_empty(self, fig1):
        assert first(fig1, "MATCH (x:NoSuchLabel)") is None

    def test_exists(self, fig1):
        assert exists(fig1, "MATCH (a:Account)-[t:Transfer]->(b)")
        assert not exists(fig1, "MATCH (x:NoSuchLabel)")

    def test_match_result_first(self, fig1):
        result = match(fig1, "MATCH (a:Account)-[t:Transfer]->(b)")
        assert result.first() is result.rows[0]
        empty = match(fig1, "MATCH (x:NoSuchLabel)")
        assert empty.first() is None


class TestBudgetSemanticsUnderStreaming:
    """Safety budgets are charged per emitted result, so early-terminated
    queries never trip them while exhaustive runs still do."""

    def test_max_results_fires_exhaustively(self, fig1):
        config = MatcherConfig(max_results=3)
        with pytest.raises(BudgetExceededError):
            match(fig1, "MATCH (x)-[e]-(y)", config)
        with pytest.raises(BudgetExceededError):
            list(match_iter(fig1, "MATCH (x)-[e]-(y)", config))

    def test_max_results_silent_when_limit_satisfied(self, fig1):
        config = MatcherConfig(max_results=3)
        rows = list(match_iter(fig1, "MATCH (x)-[e]-(y)", config, limit=3))
        assert len(rows) == 3
        assert first(fig1, "MATCH (x)-[e]-(y)", config) is not None

    def test_max_steps_fires_exhaustively(self, fig1):
        config = MatcherConfig(max_steps=10)
        with pytest.raises(BudgetExceededError):
            list(match_iter(fig1, "MATCH TRAIL (a)-[e:Transfer]->*(b)", config))

    def test_max_steps_silent_when_limit_satisfied(self, fig1):
        # The zero-length walk is accepted before any edge is expanded,
        # so a 1-row budget never reaches the step budget.
        config = MatcherConfig(max_steps=10)
        rows = list(
            match_iter(fig1, "MATCH TRAIL (a)-[e:Transfer]->*(b)", config, limit=1)
        )
        assert len(rows) == 1

    def test_limit_and_budget_conflict_rejected(self, fig1):
        from repro.errors import GpmlEvaluationError
        from repro.gpml import RowBudget

        with pytest.raises(GpmlEvaluationError):
            match_iter(fig1, "MATCH (x)", limit=1, budget=RowBudget(2))

    def test_limit_beyond_budget_still_raises(self, fig1):
        # A limit larger than what max_results allows is an exhaustive
        # run as far as the safety budget is concerned.
        config = MatcherConfig(max_results=3)
        with pytest.raises(BudgetExceededError):
            list(match_iter(fig1, "MATCH (x)-[e]-(y)", config, limit=10**6))


class TestEarlyTerminationIsReal:
    def test_limit_one_examines_fraction_of_search_space(self):
        graph = random_transfer_network(2000, 5000, seed=1)
        query = "MATCH (a:Account)-[t:Transfer]->(b:Account)"

        full = PipelineStats()
        list(match_iter(graph, query, stats=full))
        limited = PipelineStats()
        list(match_iter(graph, query, limit=1, stats=limited))

        assert full.rows > 1000
        assert limited.rows == 1
        assert limited.steps * 20 < full.steps  # <5% of the edge expansions

    def test_exists_probe_is_cheap(self):
        graph = random_transfer_network(2000, 5000, seed=1)
        stats = PipelineStats()
        rows = match_iter(
            graph, "MATCH (a:Account)-[t:Transfer]->(b:Account)", limit=1, stats=stats
        )
        assert next(rows, None) is not None
        assert stats.steps < 200


class TestStreamingMatchModes:
    def test_iter_filters_lazy_and_equal(self, fig1):
        query = "MATCH (a)-[e:Transfer]->(b), (b)-[f:Transfer]->(c)"
        result = match(fig1, query)
        lazy_edges = [row_key(r) for r in iter_edge_isomorphic(match_iter(fig1, query))]
        from repro.extensions.match_modes import filter_edge_isomorphic

        assert lazy_edges == [row_key(r) for r in filter_edge_isomorphic(result).rows]
        lazy_nodes = [row_key(r) for r in iter_node_isomorphic(match_iter(fig1, query))]
        from repro.extensions.match_modes import filter_node_isomorphic

        assert lazy_nodes == [row_key(r) for r in filter_node_isomorphic(result).rows]


class TestPipelineClassification:
    def test_explain_labels_streaming_stages(self):
        text = explain("MATCH (a:Account)-[t:Transfer]->(b)")
        assert "pipeline:" in text
        assert "[streaming] pattern #1 search (enumerate)" in text
        assert "[streaming] pattern #1 reduce + dedup" in text

    def test_explain_labels_blocking_selector(self):
        text = explain("MATCH ALL SHORTEST p = (a)-[:Transfer]->*(b)")
        assert "[blocking ] pattern #1 selector ALL_SHORTEST" in text
        assert "[streaming] pattern #1 search (shortest)" in text

    def test_explain_plan_labels_join_sides(self, fig1):
        text = explain_plan(
            fig1,
            "MATCH (p:Phone)~[:hasPhone]~(s:Account), "
            "(s)-[t:Transfer]->(d) WHERE t.amount > 1M",
        )
        assert "[blocking ] pattern #2 hash-join build" in text
        assert "[streaming] hash-join probe (pattern #1 outer)" in text
        assert "[streaming] postfilter WHERE" in text

    def test_explain_labels_keep_blocking(self):
        text = explain("MATCH TRAIL (a)->*(b) KEEP ANY SHORTEST")
        assert "[blocking ] KEEP ANY_SHORTEST" in text

    def test_every_stage_is_labeled(self, fig1):
        text = explain_plan(fig1, "MATCH ANY CHEAPEST COST amount p = (a)-[e]->+(b)")
        pipeline = text.split("pipeline:")[1]
        for line in pipeline.strip().splitlines():
            assert "[streaming]" in line or "[blocking ]" in line
