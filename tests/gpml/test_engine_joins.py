"""Graph patterns: joins across comma-separated path patterns (§4.3, §6.6)."""

import pytest

from repro.gpml import match
from repro.gpml.engine import prepare
from repro.gpml.matcher import MatcherConfig


class TestImplicitJoins:
    def test_shared_variable_joins(self, fig1):
        split = match(
            fig1,
            "MATCH (p:Phone)~[:hasPhone]~(s:Account), "
            "(s)-[t:Transfer WHERE t.amount>1M]->(d)",
        )
        single = match(
            fig1,
            "MATCH (p:Phone)~[:hasPhone]~(s:Account)"
            "-[t:Transfer WHERE t.amount>1M]->(d)",
        )

        def canon(result):
            return sorted(tuple(sorted(d.items())) for d in result.to_dicts())

        assert canon(split) == canon(single)

    def test_three_way_join(self, fig1):
        # Section 4.3's three-pattern query (with unblocked phones so it
        # has results on Figure 1, where no phone is blocked).
        result = match(
            fig1,
            "MATCH (s:Account)-[:signInWithIP]-(), "
            "(s)-[t:Transfer WHERE t.amount>1M]->(), "
            "(s)~[:hasPhone]~(p:Phone WHERE p.isBlocked='no')",
        )
        assert sorted({row["s"].id for row in result}) == ["a1", "a5"]

    def test_blocked_phone_variant_empty(self, fig1):
        # as printed in the paper (blocked phone): no results on Figure 1
        result = match(
            fig1,
            "MATCH (s:Account)-[:signInWithIP]-(), "
            "(s)-[t:Transfer WHERE t.amount>1M]->(), "
            "(s)~[:hasPhone]~(p:Phone WHERE p.isBlocked='yes')",
        )
        assert len(result) == 0

    def test_cross_product_when_no_shared_vars(self, fig1):
        result = match(fig1, "MATCH (c:City), (i:IP)")
        assert len(result) == 2  # 1 city x 2 IPs

    def test_join_on_edge_variable(self, fig1):
        result = match(fig1, "MATCH (x)-[e:Transfer]->(y), (x)-[e]->(z)")
        assert len(result) == 8
        assert all(row["y"] == row["z"] for row in result)

    def test_multiple_paths_per_row(self, fig1):
        result = match(fig1, "MATCH (c:City), (i:IP)")
        for row in result:
            assert len(row.paths) == 2
            assert row.paths[0].length == 0


class TestFigure4Query:
    QUERY = (
        "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
        "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
        "(y:Account WHERE y.isBlocked='yes'), "
        "TRAIL (x)-[:Transfer]->+(y)"
    )

    def test_owner_pairs(self, fig1):
        result = match(fig1, self.QUERY)
        pairs = sorted({(row["x"]["owner"], row["y"]["owner"]) for row in result})
        assert pairs == [("Aretha", "Jay"), ("Dave", "Jay")]

    def test_row_count_counts_transfer_paths(self, fig1):
        # one a2->a4 trail, three a6->a4 trails
        result = match(fig1, self.QUERY)
        assert len(result) == 4

    def test_join_respects_selector_per_pattern(self, fig1):
        query = self.QUERY.replace("TRAIL", "ANY SHORTEST")
        result = match(fig1, query)
        assert len(result) == 2  # one path per (x, y) partition


class TestPostfilter:
    def test_final_where_after_join(self, fig1):
        result = match(
            fig1,
            "MATCH (x:Account)-[t:Transfer]->(y:Account), (y)-[u:Transfer]->(z) "
            "WHERE t.amount + u.amount > 18M",
        )
        for row in result:
            assert row["t"]["amount"] + row["u"]["amount"] > 18_000_000
        assert len(result) > 0

    def test_same_across_patterns(self, fig1):
        result = match(
            fig1,
            "MATCH (x:Account)-[:Transfer]->(y), (z:Account)-[:isLocatedIn]->(c) "
            "WHERE SAME(x, z)",
        )
        assert all(row["x"] == row["z"] for row in result)
        assert len(result) == 8

    def test_all_different_postfilter(self, two_cycle):
        # x->y->x walks exist in the 2-cycle; ALL_DIFFERENT removes them
        total = match(two_cycle, "MATCH (x)-[:E]->(y)-[:E]->(z)")
        distinct = match(
            two_cycle,
            "MATCH (x)-[:E]->(y)-[:E]->(z) WHERE ALL_DIFFERENT(x, y, z)",
        )
        assert len(total) == 2 and len(distinct) == 0

    def test_all_different_no_op_on_acyclic_rows(self, fig1):
        distinct = match(
            fig1,
            "MATCH (x:Account)-[:Transfer]->(y)-[:Transfer]->(z) "
            "WHERE ALL_DIFFERENT(x, y, z)",
        )
        for row in distinct:
            assert len({row["x"].id, row["y"].id, row["z"].id}) == 3


class TestPreparedQueries:
    def test_prepare_once_run_many(self, fig1):
        prepared = prepare("MATCH (x:Account WHERE x.isBlocked='no')")
        first = match(fig1, prepared)
        second = match(fig1, prepared)
        assert first.to_dicts() == second.to_dicts()

    def test_prepared_across_graphs(self, fig1):
        from repro.datasets import random_transfer_network

        prepared = prepare("MATCH (x:Account)-[t:Transfer]->(y)")
        small = match(fig1, prepared)
        synthetic = match(random_transfer_network(5, 9, seed=1), prepared)
        assert len(small) == 8
        assert len(synthetic) == 9

    def test_visible_variables(self):
        prepared = prepare("MATCH p = (x)-[e]->(y), (y)~(z)")
        assert prepared.visible_variables() == ["e", "x", "y", "z", "p"]
