"""The KEEP clause (Section 7.2): selection after the final WHERE."""

import pytest

from repro.errors import NonTerminationError
from repro.gpml import match, prepare
from repro.gpml.parser import parse_match


class TestParsing:
    def test_keep_selector_parsed(self):
        stmt = parse_match("MATCH TRAIL (a)->*(b) WHERE a.v = 1 KEEP ANY SHORTEST")
        assert stmt.keep is not None and stmt.keep.kind == "ANY_SHORTEST"

    def test_keep_without_where(self):
        stmt = parse_match("MATCH TRAIL (a)->*(b) KEEP SHORTEST 2")
        assert stmt.keep.kind == "SHORTEST_K" and stmt.keep.k == 2

    def test_round_trip(self):
        text = str(parse_match("MATCH TRAIL (a) ->* (b) KEEP ALL SHORTEST"))
        assert str(parse_match(text)) == text

    def test_keep_requires_selector(self):
        from repro.errors import GpmlSyntaxError

        with pytest.raises(GpmlSyntaxError):
            parse_match("MATCH (a)->(b) KEEP")


class TestTermination:
    def test_keep_does_not_cover_unbounded_quantifiers(self):
        # the paper's §7.2 point: this query may not terminate; our
        # engine keeps the static rule — KEEP is not a head selector.
        with pytest.raises(NonTerminationError):
            prepare("MATCH (x)-[e]->*(y) WHERE AVG(e.amount) < 1 KEEP ANY SHORTEST")

    def test_keep_with_restrictor_is_fine(self, fig1):
        result = match(
            fig1,
            "MATCH TRAIL p = (x:Account)-[e:Transfer]->*(y) "
            "WHERE AVG(e.amount) >= 9M KEEP ANY SHORTEST",
        )
        assert len(result) > 0


class TestSemantics:
    def test_keep_selects_after_postfilter(self, fig1):
        # Section 5.2's postfilter query is EMPTY with a head selector
        # (the shortest path has an unblocked q)...
        head = match(
            fig1,
            "MATCH ALL SHORTEST (p:Account WHERE p.owner='Scott')->+"
            "(q:Account)->+(r:Account WHERE r.owner='Charles') "
            "WHERE q.isBlocked='yes'",
        )
        assert len(head) == 0
        # ...but KEEP selects among filtered rows, recovering the
        # prefilter answer.
        keep = match(
            fig1,
            "MATCH TRAIL (p:Account WHERE p.owner='Scott')->+"
            "(q:Account)->+(r:Account WHERE r.owner='Charles') "
            "WHERE q.isBlocked='yes' KEEP ALL SHORTEST",
        )
        paths = [row.paths[0] for row in keep]
        assert [str(p) for p in paths] == [
            "path(a1,t1,a3,t2,a2,t3,a4,t4,a6,t6,a5)"
        ]
        assert all(row["q"].id == "a4" for row in keep)

    def test_keep_partitions_by_endpoints(self, fig1):
        result = match(
            fig1,
            "MATCH TRAIL p = (a:Account)-[:Transfer]->+(b:Account) "
            "KEEP ANY SHORTEST",
        )
        endpoints = [(p.source_id, p.target_id) for p in result.paths()]
        assert len(endpoints) == len(set(endpoints))

    def test_keep_all_shortest_keeps_ties(self, fig1):
        result = match(
            fig1,
            "MATCH p = (a:Account)-[:Transfer]->{1,3}(b:Account) KEEP ALL SHORTEST",
        )
        by_partition: dict = {}
        for p in result.paths():
            by_partition.setdefault((p.source_id, p.target_id), []).append(p)
        for paths in by_partition.values():
            assert len({p.length for p in paths}) == 1

    def test_keep_composes_with_head_selector(self, fig1):
        # head selector first (per path pattern), postfilter, then KEEP
        result = match(
            fig1,
            "MATCH SHORTEST 3 p = (a WHERE a.owner='Dave')-[e:Transfer]->+"
            "(b WHERE b.owner='Aretha') "
            "WHERE COUNT(e) > 2 KEEP ANY",
        )
        assert len(result) == 1
        assert result.rows[0].paths[0].length > 2

    def test_keep_cheapest(self, fig1):
        result = match(
            fig1,
            "MATCH TRAIL p = (a WHERE a.owner='Dave')-[e:Transfer]->+"
            "(b WHERE b.owner='Aretha') KEEP ANY CHEAPEST COST amount",
        )
        assert len(result) == 1
        # the 2-hop trail (20M) beats the 4-hop (31M) and 5-hop (43M)
        assert result.rows[0].paths[0].length == 2
