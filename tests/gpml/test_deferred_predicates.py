"""Deferred prefilters: element WHEREs that reference later variables."""

import pytest

from repro.gpml import match, prepare
from repro.gpml.parser import parse_match
from repro.gpml.normalize import normalize_graph_pattern
from repro.gpml.analysis import analyze


class TestForwardReferences:
    def test_edge_where_referencing_target(self, fig1):
        # e's WHERE references b, declared to its right: evaluated once
        # the full path is known, still as a prefilter.
        result = match(
            fig1,
            "MATCH (a:Account)-[e:Transfer WHERE e.amount > 9M AND "
            "b.isBlocked = 'yes']->(b:Account)",
        )
        assert result.to_dicts() == [{"a": "a2", "e": "t3", "b": "a4"}]

    def test_node_where_referencing_later_node(self, fig1):
        result = match(
            fig1,
            "MATCH (a:Account WHERE b.owner = 'Jay')-[e:Transfer]->(b:Account)",
        )
        assert result.to_dicts() == [{"a": "a2", "e": "t3", "b": "a4"}]

    def test_equivalent_to_postfilter(self, fig1):
        inline = match(
            fig1,
            "MATCH (a:Account WHERE a.owner = b.owner)-[e:Transfer]->{1,3}(b)",
        )
        postfix = match(
            fig1,
            "MATCH (a:Account)-[e:Transfer]->{1,3}(b) WHERE a.owner = b.owner",
        )
        assert sorted(str(p) for p in inline.paths()) == sorted(
            str(p) for p in postfix.paths()
        )

    def test_deferral_detected_statically(self):
        normalized = normalize_graph_pattern(
            parse_match("MATCH (a WHERE b.owner='Jay')-[e]->(b)")
        )
        analysis = analyze(normalized)
        assert len(analysis.paths[0].deferred_wheres) == 1

    def test_no_deferral_for_backward_refs(self):
        normalized = normalize_graph_pattern(
            parse_match("MATCH (a)-[e]->(b WHERE a.owner='Jay')")
        )
        analysis = analyze(normalized)
        assert len(analysis.paths[0].deferred_wheres) == 0

    def test_deferred_with_selector_still_prefilter(self, fig1):
        # the deferred predicate runs before the selector: a path that
        # fails it cannot be "the shortest".
        result = match(
            fig1,
            "MATCH ANY SHORTEST p = (a:Account WHERE b.owner='Jay')"
            "-[:Transfer]->+(b:Account)",
        )
        # shortest paths *to Jay* per start; e.g. from a1 length 3
        lengths = {
            (p.source_id): p.length for p in result.paths()
        }
        assert lengths["a2"] == 1
        assert lengths["a1"] == 3


class TestParenWhereDeferral:
    def test_paren_where_with_forward_ref(self, fig1):
        result = match(
            fig1,
            "MATCH [(a:Account)-[e:Transfer]-> WHERE z.owner = 'Jay'] ()"
            "-[f:Transfer]->(z)",
        )
        assert all(row["z"]["owner"] == "Jay" for row in result)
        assert len(result) == 1  # a3-t2->a2-t3->a4
