"""Section 4.5 behaviour: path pattern union vs multiset alternation."""

import pytest

from repro.gpml import match


class TestSetUnion:
    def test_city_country_union(self, fig1):
        # paper: two results, c1 and c2 (duplicate c2 deduplicated)
        result = match(fig1, "MATCH (c:City) | (c:Country)")
        assert sorted(result.ids("c")) == ["c1", "c2"]

    def test_union_equals_label_disjunction(self, fig1):
        # Section 6.5: the disjunctive-label form is equivalent
        union = match(fig1, "MATCH (c:City) | (c:Country)")
        labels = match(fig1, "MATCH (c:City|Country)")
        assert sorted(union.ids("c")) == sorted(labels.ids("c"))

    def test_union_of_different_shapes(self, fig1):
        result = match(
            fig1,
            "MATCH [(x:Account)-[:Transfer]->(y:Account WHERE y.isBlocked='yes')] | "
            "[(x:Account)-[:Transfer]->()~[:hasPhone]~(p)]",
        )
        assert len(result) > 0
        xs = {row["x"].id for row in result}
        assert "a2" in xs  # a2 -> a4 (blocked)


class TestMultisetAlternation:
    def test_city_country_alternation(self, fig1):
        # paper: three results — c1 once, c2 twice
        result = match(fig1, "MATCH (c:City) |+| (c:Country)")
        assert sorted(result.ids("c")) == ["c1", "c2", "c2"]

    def test_multiset_triples_with_three_branches(self, fig1):
        result = match(fig1, "MATCH (c:Country) |+| (c:Country) |+| (c:Country)")
        assert sorted(result.ids("c")) == ["c1", "c1", "c1", "c2", "c2", "c2"]

    def test_mixed_operators_merge_pipe_classes(self, fig1):
        # (City | City) |+| Country: the two City branches deduplicate
        # with each other; the Country branch stays apart.
        result = match(fig1, "MATCH (c:City) | (c:City) |+| (c:Country)")
        assert sorted(result.ids("c")) == ["c1", "c2", "c2"]

    def test_section6_multiset_keeps_four(self, fig1):
        query = (
            "MATCH TRAIL (a WHERE a.owner='Jay')"
            " [-[b:Transfer WHERE b.amount>5M]->]+"
            " (a) [-[:isLocatedIn]->(c:City) {op} -[:isLocatedIn]->(c:Country)]"
        )
        assert len(match(fig1, query.format(op="|"))) == 2
        assert len(match(fig1, query.format(op="|+|"))) == 4

    def test_overlapping_quantifiers_not_deduplicated(self, fig1):
        union = match(fig1, "MATCH p = ->{1,2} | ->{1,2}")
        multiset = match(fig1, "MATCH p = ->{1,2} |+| ->{1,2}")
        assert len(multiset) == 2 * len(union)


class TestUnionInsideConcatenation:
    def test_branch_choice_per_position(self, fig1):
        result = match(
            fig1,
            "MATCH (a WHERE a.owner='Jay') [-[:Transfer]->(n:Account) | "
            "-[:isLocatedIn]->(n:Country)]",
        )
        assert sorted(row["n"].id for row in result) == ["a6", "c2"]

    def test_nested_union_dedup(self, fig1):
        # same binding through both branches collapses under set union
        result = match(fig1, "MATCH (a:Account) [(a WHERE a.owner='Jay') | (a:Account)]")
        assert len(result) == 6
