"""Unit tests for NFA compilation."""

import pytest

from repro.gpml import ast
from repro.gpml.analysis import analyze
from repro.gpml.automaton import (
    EnterQuant,
    ExitQuant,
    IterBegin,
    NodeTest,
    ScopeBegin,
    ScopeEnd,
    compile_path_pattern,
)
from repro.gpml.normalize import normalize_graph_pattern
from repro.gpml.parser import parse_match


def compiled(text, index=0):
    normalized = normalize_graph_pattern(parse_match(text))
    analysis = analyze(normalized)
    return compile_path_pattern(normalized.paths[index], analysis.paths[index])


def actions(nfa, of_type):
    out = []
    for state in range(nfa.num_states):
        for eps in nfa.epsilons[state]:
            if isinstance(eps.action, of_type):
                out.append(eps.action)
    return out


class TestStructure:
    def test_single_node(self):
        nfa = compiled("MATCH (x)")
        assert nfa.num_states == 2
        tests = actions(nfa, NodeTest)
        assert len(tests) == 1 and tests[0].pattern.var == "x"

    def test_node_edge_node(self):
        nfa = compiled("MATCH (x)-[e]->(y)")
        edges = [t for state in nfa.edges for t in state]
        assert len(edges) == 1
        assert edges[0].pattern.var == "e"
        assert len(actions(nfa, NodeTest)) == 2

    def test_quantifier_counters(self):
        nfa = compiled("MATCH (a)-[e]->{2,5}(b)")
        iter_begins = actions(nfa, IterBegin)
        assert len(iter_begins) == 1
        assert iter_begins[0].upper == 5 and iter_begins[0].cap == 5
        exits = actions(nfa, ExitQuant)
        assert exits[0].lower == 2

    def test_unbounded_counter_saturates_at_lower(self):
        nfa = compiled("MATCH TRAIL (a)-[e]->{3,}(b)")
        iter_begins = actions(nfa, IterBegin)
        assert iter_begins[0].upper is None
        assert iter_begins[0].cap == 3

    def test_path_restrictor_becomes_scope(self):
        nfa = compiled("MATCH TRAIL (a)->*(b)")
        begins = actions(nfa, ScopeBegin)
        ends = actions(nfa, ScopeEnd)
        assert any(b.restrictor == "TRAIL" for b in begins)
        assert any(e.restrictor == "TRAIL" for e in ends)

    def test_paren_where_on_scope_end(self):
        nfa = compiled("MATCH [(a)-[e]->(b) WHERE a.x = b.x]")
        ends = [e for e in actions(nfa, ScopeEnd) if e.where is not None]
        assert len(ends) == 1

    def test_alternation_branches(self):
        nfa = compiled("MATCH (a) | (b) | (c)")
        # one epsilon fan-out per branch from the start region
        tests = actions(nfa, NodeTest)
        assert {t.pattern.var for t in tests} == {"a", "b", "c"}

    def test_describe_is_readable(self):
        text = compiled("MATCH (x)-[e]->(y)").describe()
        assert "states:" in text
        assert "-ε->" in text


class TestCounterSemantics:
    def test_zero_lower_allows_skip(self, fig1):
        from repro.gpml import match

        result = match(fig1, "MATCH (a WHERE a.owner='Jay')-[:Transfer]->{0,1}(b)")
        # zero-length (a=b=a4) plus t4
        assert len(result) == 2

    def test_exact_bounds_enforced(self, fig1):
        from repro.gpml import match

        result = match(fig1, "MATCH (a:Account)-[:Transfer]->{3}(b)")
        assert all(row.paths[0].length == 3 for row in result)

    def test_nested_quantifier_ids_disjoint(self):
        nfa = compiled("MATCH TRAIL (a) [[(p)-[e]->(q)]{1,2} -[f]->]{1,3} (b)")
        enters = actions(nfa, EnterQuant)
        assert len({e.quant_id for e in enters}) == 2
