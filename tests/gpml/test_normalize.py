"""Unit tests for normalization (Section 6.2)."""

import pytest

from repro.gpml import ast
from repro.gpml.normalize import is_anonymous_name, normalize_graph_pattern
from repro.gpml.parser import parse_match


def normalize(text):
    return normalize_graph_pattern(parse_match(text))


def flatten(pattern):
    """Leaf node/edge patterns in left-to-right order."""
    if isinstance(pattern, (ast.NodePattern, ast.EdgePattern)):
        return [pattern]
    out = []
    for sub in pattern.sub_patterns():
        out.extend(flatten(sub))
    return out


class TestAlternationOfNodesAndEdges:
    def test_bare_edge_gets_anonymous_nodes(self):
        # the paper: MATCH -[e]-> behaves like ()-[e]->()
        normalized = normalize("MATCH -[e]->").paths[0].pattern
        leaves = flatten(normalized)
        kinds = [type(leaf).__name__ for leaf in leaves]
        assert kinds == ["NodePattern", "EdgePattern", "NodePattern"]
        assert leaves[0].anonymous and leaves[2].anonymous

    def test_quantified_bare_edge_wrapped(self):
        # [-[b:T]->]+ becomes [()-[b:T]->()]{1,} (Section 6.2)
        normalized = normalize("MATCH TRAIL [-[b:Transfer]->]+").paths[0].pattern
        # top structure: Concat(anon, Quantified(Paren(Concat(anon, edge, anon))), anon)
        quant = next(p for p in normalized.walk() if isinstance(p, ast.Quantified))
        inner_leaves = flatten(quant.inner)
        assert [type(l).__name__ for l in inner_leaves] == [
            "NodePattern",
            "EdgePattern",
            "NodePattern",
        ]

    def test_consecutive_edges_get_junction_node(self):
        normalized = normalize("MATCH (a)-[e]->-[f]->(b)").paths[0].pattern
        kinds = [type(l).__name__ for l in flatten(normalized)]
        assert kinds == [
            "NodePattern",
            "EdgePattern",
            "NodePattern",
            "EdgePattern",
            "NodePattern",
        ]

    def test_adjacent_node_patterns_kept(self):
        # (a)(b) stays two node tests at one position (unification)
        normalized = normalize("MATCH (a)(b)").paths[0].pattern
        kinds = [type(l).__name__ for l in flatten(normalized)]
        assert kinds == ["NodePattern", "NodePattern"]


class TestFreshVariables:
    def test_every_leaf_has_a_variable(self):
        normalized = normalize("MATCH ()-[]->()-[:isLocatedIn]->(y)")
        for leaf in flatten(normalized.paths[0].pattern):
            assert leaf.var is not None

    def test_anonymous_names_are_unique(self):
        normalized = normalize("MATCH ()-[]->()-[]->()")
        names = [leaf.var for leaf in flatten(normalized.paths[0].pattern)]
        assert len(set(names)) == len(names)

    def test_named_variables_untouched(self):
        normalized = normalize("MATCH (x)-[e]->(y)")
        names = [leaf.var for leaf in flatten(normalized.paths[0].pattern)]
        assert names == ["x", "e", "y"]

    def test_is_anonymous_name(self):
        normalized = normalize("MATCH -[e]->")
        leaves = flatten(normalized.paths[0].pattern)
        assert is_anonymous_name(leaves[0].var)
        assert not is_anonymous_name("e")


class TestIds:
    def test_quantifier_ids_assigned(self):
        normalized = normalize("MATCH TRAIL ->* ->+")
        quants = [
            p for p in normalized.paths[0].pattern.walk() if isinstance(p, ast.Quantified)
        ]
        assert sorted(q.quant_id for q in quants) == [1, 2]

    def test_paren_and_alt_ids(self):
        normalized = normalize("MATCH [(a)->(b)] | [(a)->(c)]")
        pattern = normalized.paths[0].pattern
        alts = [p for p in pattern.walk() if isinstance(p, ast.Alternation)]
        parens = [p for p in pattern.walk() if isinstance(p, ast.ParenPattern)]
        assert len(alts) == 1 and alts[0].alt_id == 1
        assert sorted(p.paren_id for p in parens) == [1, 2]

    def test_input_ast_not_mutated(self):
        raw = parse_match("MATCH TRAIL ->*")
        quant_before = [
            p for p in raw.paths[0].pattern.walk() if isinstance(p, ast.Quantified)
        ][0]
        assert quant_before.quant_id == -1
        normalize_graph_pattern(raw)
        assert quant_before.quant_id == -1


class TestNestedStructures:
    def test_nested_quantifiers(self):
        normalized = normalize("MATCH TRAIL [[(p)->(q)]{1,2} ->]{1,3}")
        quants = [
            p for p in normalized.paths[0].pattern.walk() if isinstance(p, ast.Quantified)
        ]
        assert len(quants) == 2

    def test_alternation_branches_padded(self):
        normalized = normalize("MATCH (x) [-> | ->->] (y)")
        alt = next(
            p for p in normalized.paths[0].pattern.walk() if isinstance(p, ast.Alternation)
        )
        for branch in alt.branches:
            leaves = flatten(branch)
            assert isinstance(leaves[0], ast.NodePattern)
            assert isinstance(leaves[-1], ast.NodePattern)

    def test_optional_inner_padded(self):
        normalized = normalize("MATCH (x) [->]?")
        optional = next(
            p
            for p in normalized.paths[0].pattern.walk()
            if isinstance(p, ast.OptionalPattern)
        )
        leaves = flatten(optional.inner)
        assert isinstance(leaves[0], ast.NodePattern)
        assert isinstance(leaves[-1], ast.NodePattern)
