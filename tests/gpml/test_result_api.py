"""MatchResult / BindingRow public API."""

import pytest

from repro.gpml import match
from repro.gpml.engine import BindingRow
from repro.values import NULL, is_null


class TestMatchResult:
    def test_iteration_and_len(self, fig1):
        result = match(fig1, "MATCH (c:Country)")
        assert len(result) == 2
        assert len(list(result)) == 2
        assert bool(result)

    def test_empty_result_falsy(self, fig1):
        assert not match(fig1, "MATCH (c:Country WHERE c.name='Nowhere')")

    def test_column_and_ids(self, fig1):
        result = match(fig1, "MATCH (c:Country)")
        assert sorted(node.id for node in result.column("c")) == ["c1", "c2"]
        assert sorted(result.ids("c")) == ["c1", "c2"]

    def test_ids_on_group_variable(self, fig1):
        result = match(fig1, "MATCH (a WHERE a.owner='Scott')-[e:Transfer]->{2,2}(b)")
        for ids in result.ids("e"):
            assert isinstance(ids, list) and len(ids) == 2

    def test_to_dicts_includes_paths_for_path_vars(self, fig1):
        result = match(fig1, "MATCH p = (c:City)")
        assert result.to_dicts() == [{"c": "c2", "p": "path(c2)"}]

    def test_distinct_dicts(self, fig1):
        result = match(fig1, "MATCH (a:Account)-[:Transfer]->(b)")
        projected = match(fig1, "MATCH (a:Account)-[:Transfer]->()")
        assert len(projected.to_dicts()) == 8
        assert len(projected.distinct_dicts()) <= 8

    def test_paths_accessor(self, fig1):
        result = match(fig1, "MATCH (c:City), (i:IP)")
        assert all(p.length == 0 for p in result.paths(0))
        assert all(p.length == 0 for p in result.paths(1))

    def test_repr(self, fig1):
        text = repr(match(fig1, "MATCH (c:City)"))
        assert "1 rows" in text and "'c'" in text


class TestBindingRow:
    def test_getitem_defaults_to_null(self, fig1):
        row = match(fig1, "MATCH (c:City)").rows[0]
        assert is_null(row["missing"])
        assert row.get("missing", "fallback") == "fallback"
        assert "c" in row and "missing" not in row

    def test_repr_sorted(self):
        row = BindingRow({"b": 1, "a": 2}, [])
        assert repr(row).index("a=") < repr(row).index("b=")


class TestVariableOrdering:
    def test_variables_listed_in_declaration_order(self, fig1):
        result = match(fig1, "MATCH q = (z)-[e]->(a), (a)~(m)")
        # per-path sorted visible vars, then path vars
        assert result.variables == ["a", "e", "z", "m", "q"]

    def test_no_anonymous_variables_leak(self, fig1):
        result = match(fig1, "MATCH ()-[e:Transfer]->()")
        assert result.variables == ["e"]
        assert all(set(row.values) == {"e"} for row in result.rows)
