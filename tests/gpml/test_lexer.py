"""Unit tests for the GPML tokenizer."""

import pytest

from repro.errors import GpmlSyntaxError
from repro.gpml.lexer import EOF, IDENT, KEYWORD, NUMBER, PUNCT, STRING, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type != EOF]


class TestBasics:
    def test_identifiers_and_keywords(self):
        assert kinds("MATCH Account x") == [
            (KEYWORD, "MATCH"),
            (IDENT, "Account"),
            (IDENT, "x"),
        ]

    def test_keywords_case_insensitive(self):
        assert kinds("match Where aNd") == [
            (KEYWORD, "MATCH"),
            (KEYWORD, "WHERE"),
            (KEYWORD, "AND"),
        ]

    def test_identifiers_case_sensitive(self):
        assert kinds("Account account") == [(IDENT, "Account"), (IDENT, "account")]

    def test_strings_with_escape(self):
        assert kinds("'Ankh-Morpork' 'it''s'") == [
            (STRING, "Ankh-Morpork"),
            (STRING, "it's"),
        ]

    def test_unterminated_string(self):
        with pytest.raises(GpmlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        assert kinds("42 3.5 5M 10k 1e3") == [
            (NUMBER, 42),
            (NUMBER, 3.5),
            (NUMBER, 5_000_000),
            (NUMBER, 10_000),
            (NUMBER, 1000.0),
        ]

    def test_magnitude_suffix_requires_word_boundary(self):
        # 5Max is NUMBER(5) IDENT(Max), not 5_000_000 'ax'
        assert kinds("5Max") == [(NUMBER, 5), (KEYWORD, "MAX")]

    def test_unexpected_character(self):
        with pytest.raises(GpmlSyntaxError) as err:
            tokenize("a $ b")
        assert "line 1" in str(err.value)


class TestPunctuation:
    def test_arrows_stay_atomic_chars(self):
        # The lexer must NOT glue '-[' or '<-': the parser assembles them.
        values = [v for _, v in kinds("(a)<-[e]-(b)")]
        assert values == ["(", "a", ")", "<", "-", "[", "e", "]", "-", "(", "b", ")"]

    def test_greedy_comparison_operators(self):
        assert [v for _, v in kinds("a <= b >= c <> d")] == [
            "a", "<=", "b", ">=", "c", "<>", "d",
        ]

    def test_less_than_minus_not_glued(self):
        # 'a < -1' must lex as '<' then '-' (comparison + unary minus)
        assert [v for _, v in kinds("a < -1")] == ["a", "<", "-", 1]

    def test_multiset_alternation_operator(self):
        assert [v for _, v in kinds("a |+| b | c")] == ["a", "|+|", "b", "|", "c"]

    def test_glued_flag(self):
        tokens = tokenize("-[e]->")
        assert tokens[0].glued is False
        assert all(t.glued for t in tokens[1:-1])
        spaced = tokenize("- [")
        assert spaced[1].glued is False


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment here\n b") == [(IDENT, "a"), (IDENT, "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [(IDENT, "a"), (IDENT, "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(GpmlSyntaxError):
            tokenize("a /* oops")


class TestPositions:
    def test_positions_recorded(self):
        tokens = tokenize("MATCH (x)")
        assert tokens[0].position == 0
        assert tokens[1].position == 6

    def test_error_reports_line_and_column(self):
        with pytest.raises(GpmlSyntaxError) as err:
            tokenize("ok\n  'bad")
        assert "line 2" in str(err.value)
