"""The Section 6 reference engine: unit behaviour + differential tests."""

import pytest

from repro.errors import BudgetExceededError
from repro.gpml import match
from repro.gpml.reference import ReferenceConfig, reference_match


def canon(result):
    rows = []
    for row in result.rows:
        values = tuple(sorted((k, repr(v)) for k, v in row.values.items()))
        paths = tuple(str(p) for p in row.paths)
        rows.append((values, paths))
    return sorted(rows)


DIFFERENTIAL_QUERIES = [
    "MATCH (x:Account WHERE x.isBlocked='no')",
    "MATCH (x)-[e]->(y)",
    "MATCH (x)~[e]~(y)",
    "MATCH (x)-[e]-(y)",
    "MATCH (s)-[e]->(m)-[f]->(t)",
    "MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)",
    "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->(d:Account)~[:hasPhone]~(p)",
    "MATCH (a:Account)-[:Transfer]->{2,3}(b:Account)",
    "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*(b WHERE b.owner='Aretha')",
    "MATCH ACYCLIC p = (a WHERE a.owner='Dave')-[t:Transfer]->*(b)",
    "MATCH (c:City) | (c:Country)",
    "MATCH (c:City) |+| (c:Country)",
    "MATCH (x) [->(y)]?",
    "MATCH (x:Account) [-[t:Transfer]->(y) WHERE t.amount > 8M]?",
    "MATCH (a)-[e:Transfer]->(b), (b)-[f:isLocatedIn]->(c)",
    "MATCH (x)-[e]-(y) WHERE e IS DIRECTED AND x IS SOURCE OF e",
    "MATCH TRAIL (a WHERE a.owner='Jay') [-[b:Transfer WHERE b.amount>5M]->]+ (a)"
    " [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]",
]


class TestDifferential:
    @pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
    def test_reference_equals_automaton_on_figure1(self, fig1, query):
        production = match(fig1, query)
        reference = reference_match(fig1, query, ReferenceConfig(max_unroll=8))
        assert canon(production) == canon(reference)

    def test_selector_queries_agree_with_adequate_unroll(self, fig1):
        query = (
            "MATCH ALL SHORTEST p = (a WHERE a.owner='Dave')"
            "-[t:Transfer]->*(b WHERE b.owner='Aretha')"
        )
        production = match(fig1, query)
        reference = reference_match(fig1, query, ReferenceConfig(max_unroll=8))
        assert canon(production) == canon(reference)

    def test_differential_on_synthetic_graphs(self):
        from repro.datasets import random_transfer_network

        graph = random_transfer_network(6, 10, seed=11)
        for query in [
            "MATCH (x:Account)-[t:Transfer]->(y)",
            "MATCH TRAIL p = (a:Account)-[t:Transfer]->{1,3}(b)",
            "MATCH (p:Phone)~[:hasPhone]~(a:Account)",
        ]:
            assert canon(match(graph, query)) == canon(
                reference_match(graph, query, ReferenceConfig(max_unroll=4))
            )


class TestExpansionMechanics:
    def test_unroll_bound_controls_expansion(self, fig1):
        query = "MATCH TRAIL (a WHERE a.owner='Jay') [-[b:Transfer WHERE b.amount>5M]->]+ (a)"
        # the n=7 match needs max_unroll >= 7
        short = reference_match(fig1, query, ReferenceConfig(max_unroll=4))
        full = reference_match(fig1, query, ReferenceConfig(max_unroll=7))
        assert len(short) == 1
        assert len(full) == 2

    def test_budget_guard(self, fig1):
        with pytest.raises(BudgetExceededError):
            reference_match(
                fig1,
                "MATCH TRAIL (a)-[e:Transfer]->*(b)",
                ReferenceConfig(max_unroll=30, max_rigid_patterns=10),
            )

    def test_paper_rigid_pattern_counts(self, fig1):
        # Section 6.4: only n = 4 and n = 7 have matches.
        query = (
            "MATCH TRAIL (a WHERE a.owner='Jay')"
            " [-[b:Transfer WHERE b.amount>5M]->]+ (a)"
            " [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]"
        )
        result = reference_match(fig1, query, ReferenceConfig(max_unroll=9))
        lengths = sorted(row.paths[0].length for row in result.rows)
        assert lengths == [5, 8]  # 4+1 and 7+1 edges (loop + isLocatedIn)
