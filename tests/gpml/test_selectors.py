"""Figure 8 behaviour: the six selectors plus combination rules."""

import pytest

from repro.datasets import diamond_chain, grid_graph
from repro.graph import GraphBuilder
from repro.gpml import match


@pytest.fixture()
def lengths_graph():
    """s->t via routes of lengths 1, 2, 2 and 3."""
    return (
        GraphBuilder("lengths")
        .node("s", "N")
        .node("t", "N")
        .node("m1", "N")
        .node("m2", "N")
        .node("x1", "N")
        .node("x2", "N")
        .directed("d1", "s", "t", "E")
        .directed("a1", "s", "m1", "E")
        .directed("a2", "m1", "t", "E")
        .directed("b1", "s", "m2", "E")
        .directed("b2", "m2", "t", "E")
        .directed("c1", "s", "x1", "E")
        .directed("c2", "x1", "x2", "E")
        .directed("c3", "x2", "t", "E")
        .build()
    )


def st_paths(graph, query):
    result = match(graph, query)
    return sorted(
        (p.length, str(p))
        for p in result.paths()
        if p.source_id == "s" and p.target_id == "t"
    )


class TestShortestFamily:
    def test_any_shortest_returns_one_minimal(self, lengths_graph):
        paths = st_paths(lengths_graph, "MATCH ANY SHORTEST p = (a)-[e]->+(b)")
        assert len(paths) == 1
        assert paths[0][0] == 1

    def test_all_shortest_returns_all_minimal(self, lengths_graph):
        # remove the length-1 route: two length-2 routes tie
        g = lengths_graph
        g.remove_edge("d1")
        paths = st_paths(g, "MATCH ALL SHORTEST p = (a)-[e]->+(b)")
        assert [length for length, _ in paths] == [2, 2]

    def test_all_shortest_exponential_ties(self):
        g = diamond_chain(5)
        result = match(g, "MATCH ALL SHORTEST p = (a WHERE a.branch IS NULL)->*(b)")
        ties = [
            p for p in result.paths() if p.source_id == "s0" and p.target_id == "s5"
        ]
        assert len(ties) == 2**5

    def test_shortest_k(self, lengths_graph):
        paths = st_paths(lengths_graph, "MATCH SHORTEST 3 p = (a)-[e]->+(b)")
        assert [length for length, _ in paths] == [1, 2, 2]

    def test_shortest_k_more_than_available(self, lengths_graph):
        paths = st_paths(lengths_graph, "MATCH SHORTEST 10 p = (a)-[e]->+(b)")
        # all four routes retained ("if fewer than k, then all")
        assert [length for length, _ in paths] == [1, 2, 2, 3]

    def test_shortest_k_group(self, lengths_graph):
        paths = st_paths(lengths_graph, "MATCH SHORTEST 2 GROUP p = (a)-[e]->+(b)")
        # first two length groups: {1} and {2, 2}
        assert [length for length, _ in paths] == [1, 2, 2]

    def test_shortest_1_group_is_all_shortest(self, lengths_graph):
        one_group = st_paths(lengths_graph, "MATCH SHORTEST 1 GROUP p = (a)-[e]->+(b)")
        all_shortest = st_paths(lengths_graph, "MATCH ALL SHORTEST p = (a)-[e]->+(b)")
        assert one_group == all_shortest


class TestAnyFamily:
    def test_any_returns_one_per_partition(self, lengths_graph):
        paths = st_paths(lengths_graph, "MATCH ANY p = (a)-[e]->+(b)")
        assert len(paths) == 1

    def test_any_k(self, lengths_graph):
        paths = st_paths(lengths_graph, "MATCH ANY 2 p = (a)-[e]->+(b)")
        assert len(paths) == 2

    def test_any_k_fewer_available(self, lengths_graph):
        paths = st_paths(lengths_graph, "MATCH ANY 99 p = (a)-[e]->+(b)")
        assert len(paths) == 4

    def test_any_deterministic(self, lengths_graph):
        # documented refinement: lexicographically least candidate
        first = st_paths(lengths_graph, "MATCH ANY p = (a)-[e]->+(b)")
        second = st_paths(lengths_graph, "MATCH ANY p = (a)-[e]->+(b)")
        assert first == second


class TestPartitioning:
    def test_partitions_by_endpoints(self, lengths_graph):
        # every connected (start, end) pair yields exactly one ANY result
        result = match(lengths_graph, "MATCH ANY p = (a)-[e]->+(b)")
        endpoints = [(p.source_id, p.target_id) for p in result.paths()]
        assert len(endpoints) == len(set(endpoints))

    def test_shortest_lengths_differ_per_partition(self, fig1):
        # Figure 8: "the shortest length can differ from partition to
        # partition."
        result = match(fig1, "MATCH ANY SHORTEST p = (a:Account)-[:Transfer]->+(b)")
        lengths = {
            (p.source_id, p.target_id): p.length for p in result.paths()
        }
        assert lengths[("a1", "a3")] == 1
        assert lengths[("a1", "a4")] == 3


class TestCombination:
    def test_selector_applies_after_restrictor(self, fig1):
        # Section 5.1: ALL SHORTEST TRAIL keeps shortest among trails,
        # not the shorter non-trail.
        result = match(
            fig1,
            "MATCH ALL SHORTEST TRAIL p = (a WHERE a.owner='Dave')"
            "-[t:Transfer]->*(b WHERE b.owner='Aretha')"
            "-[r:Transfer]->*(c WHERE c.owner='Mike')",
        )
        paths = sorted(str(p) for p in result.paths())
        assert paths == [
            "path(a6,t5,a3,t2,a2,t3,a4,t4,a6,t6,a5,t8,a1,t1,a3)",
            "path(a6,t6,a5,t8,a1,t1,a3,t2,a2,t3,a4,t4,a6,t5,a3)",
        ]
        assert all(p.is_trail() for p in result.paths())

    def test_selector_alone_keeps_shorter_non_trail(self, fig1):
        result = match(
            fig1,
            "MATCH ALL SHORTEST p = (a WHERE a.owner='Dave')"
            "-[t:Transfer]->*(b WHERE b.owner='Aretha')"
            "-[r:Transfer]->*(c WHERE c.owner='Mike')",
        )
        paths = [str(p) for p in result.paths()]
        assert paths == ["path(a6,t5,a3,t2,a2,t3,a4,t4,a6,t5,a3)"]

    def test_grid_all_shortest_counts(self):
        g = grid_graph(4, 4)
        result = match(
            g,
            "MATCH ALL SHORTEST p = (a WHERE a.x=0 AND a.y=0)->*"
            "(b WHERE b.x=3 AND b.y=3)",
        )
        assert len(result) == 20  # C(6,3) lattice paths


class TestCheapestExtension:
    def test_any_cheapest_prefers_low_cost_detour(self):
        g = (
            GraphBuilder("toll")
            .node("s", "N")
            .node("m", "N")
            .node("t", "N")
            .directed("fast", "s", "t", "E", toll=10)
            .directed("slow1", "s", "m", "E", toll=1)
            .directed("slow2", "m", "t", "E", toll=1)
            .build()
        )
        result = match(g, "MATCH ANY CHEAPEST COST toll p = (a)-[e]->+(b)")
        best = [p for p in result.paths() if p.source_id == "s" and p.target_id == "t"]
        assert [str(p) for p in best] == ["path(s,slow1,m,slow2,t)"]

    def test_top_k_cheapest(self):
        g = (
            GraphBuilder("toll")
            .node("s", "N")
            .node("t", "N")
            .directed("e1", "s", "t", "E", toll=5)
            .directed("e2", "s", "t", "E", toll=1)
            .directed("e3", "s", "t", "E", toll=3)
            .build()
        )
        result = match(g, "MATCH TOP 2 CHEAPEST COST toll p = (a)-[e]->(b)")
        tolls = sorted(p.cost("toll") for p in result.paths())
        assert tolls == [1.0, 3.0]

    def test_missing_cost_defaults_to_one(self):
        g = (
            GraphBuilder("partial")
            .node("s", "N")
            .node("t", "N")
            .directed("e1", "s", "t", "E")
            .directed("e2", "s", "t", "E", toll=0.5)
            .build()
        )
        result = match(g, "MATCH ANY CHEAPEST COST toll p = (a)-[e]->(b)")
        assert [str(p) for p in result.paths()] == ["path(s,e2,t)"]
