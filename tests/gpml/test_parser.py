"""Unit tests for the GPML parser: grammar coverage and round-trips."""

import pytest

from repro.errors import GpmlSyntaxError
from repro.gpml import ast
from repro.gpml.parser import parse_expression, parse_match, parse_path_pattern
from repro.gpml import expr as E


def roundtrip(text):
    first = parse_match(text)
    second = parse_match(str(first))
    assert str(second) == str(first)
    return first


class TestNodePatterns:
    def test_minimal(self):
        stmt = parse_match("MATCH ()")
        node = stmt.paths[0].pattern
        assert isinstance(node, ast.NodePattern)
        assert node.var is None and node.label is None and node.where is None

    def test_full(self):
        stmt = parse_match("MATCH (x:Account WHERE x.isBlocked='no')")
        node = stmt.paths[0].pattern
        assert node.var == "x"
        assert str(node.label) == "Account"
        assert "isBlocked" in str(node.where)

    def test_label_only(self):
        node = parse_match("MATCH (:Account)").paths[0].pattern
        assert node.var is None and str(node.label) == "Account"

    def test_where_only(self):
        node = parse_match("MATCH (WHERE TRUE)").paths[0].pattern
        assert node.var is None and node.where is not None


class TestEdgePatterns:
    @pytest.mark.parametrize(
        "text, orientation",
        [
            ("<-[e]-", ast.Orientation.LEFT),
            ("~[e]~", ast.Orientation.UNDIRECTED),
            ("-[e]->", ast.Orientation.RIGHT),
            ("<~[e]~", ast.Orientation.LEFT_OR_UNDIRECTED),
            ("~[e]~>", ast.Orientation.UNDIRECTED_OR_RIGHT),
            ("<-[e]->", ast.Orientation.LEFT_OR_RIGHT),
            ("-[e]-", ast.Orientation.ANY),
        ],
    )
    def test_full_forms(self, text, orientation):
        stmt = parse_match(f"MATCH (a){text}(b)")
        edge = stmt.paths[0].pattern.items[1]
        assert isinstance(edge, ast.EdgePattern)
        assert edge.orientation is orientation
        assert edge.var == "e"

    @pytest.mark.parametrize(
        "abbrev, orientation",
        [
            ("<-", ast.Orientation.LEFT),
            ("~", ast.Orientation.UNDIRECTED),
            ("->", ast.Orientation.RIGHT),
            ("<~", ast.Orientation.LEFT_OR_UNDIRECTED),
            ("~>", ast.Orientation.UNDIRECTED_OR_RIGHT),
            ("<->", ast.Orientation.LEFT_OR_RIGHT),
            ("-", ast.Orientation.ANY),
        ],
    )
    def test_abbreviations(self, abbrev, orientation):
        stmt = parse_match(f"MATCH (a){abbrev}(b)")
        edge = stmt.paths[0].pattern.items[1]
        assert edge.orientation is orientation
        assert edge.var is None

    def test_edge_spec_with_label_and_where(self):
        stmt = parse_match("MATCH -[e:Transfer WHERE e.amount>5M]->")
        edge = stmt.paths[0].pattern
        assert edge.var == "e"
        assert str(edge.label) == "Transfer"

    def test_bad_edge(self):
        with pytest.raises(GpmlSyntaxError):
            parse_match("MATCH (a)<[e](b)")


class TestQuantifiers:
    def test_range(self):
        stmt = parse_match("MATCH -[e]->{2,5}")
        quant = stmt.paths[0].pattern
        assert isinstance(quant, ast.Quantified)
        assert (quant.lower, quant.upper) == (2, 5)

    def test_open_range(self):
        quant = parse_match("MATCH TRAIL -[e]->{3,}").paths[0].pattern
        assert (quant.lower, quant.upper) == (3, None)
        assert quant.unbounded

    def test_exact(self):
        quant = parse_match("MATCH -[e]->{4}").paths[0].pattern
        assert (quant.lower, quant.upper) == (4, 4)

    def test_star_plus(self):
        star = parse_match("MATCH TRAIL ->*").paths[0].pattern
        plus = parse_match("MATCH TRAIL ->+").paths[0].pattern
        assert (star.lower, star.upper) == (0, None)
        assert (plus.lower, plus.upper) == (1, None)

    def test_question_mark_is_optional_not_quantifier(self):
        stmt = parse_match("MATCH (x) [->(y)]?")
        optional = stmt.paths[0].pattern.items[1]
        assert isinstance(optional, ast.OptionalPattern)

    def test_quantifier_on_paren(self):
        stmt = parse_match("MATCH [(a)->(b)]{2,5}")
        quant = stmt.paths[0].pattern
        assert isinstance(quant, ast.Quantified)
        assert isinstance(quant.inner, ast.ParenPattern)

    def test_quantifier_rejected_on_node(self):
        with pytest.raises(GpmlSyntaxError):
            parse_match("MATCH (a){2,5}")

    def test_double_quantifier_rejected(self):
        with pytest.raises(GpmlSyntaxError):
            parse_match("MATCH -[e]->{2,5}*")

    def test_inverted_bounds_rejected(self):
        with pytest.raises(GpmlSyntaxError):
            parse_match("MATCH -[e]->{5,2}")


class TestSelectorsRestrictors:
    @pytest.mark.parametrize(
        "text, kind, k",
        [
            ("ANY", "ANY", None),
            ("ANY 3", "ANY_K", 3),
            ("ANY SHORTEST", "ANY_SHORTEST", None),
            ("ALL SHORTEST", "ALL_SHORTEST", None),
            ("SHORTEST 2", "SHORTEST_K", 2),
            ("SHORTEST 2 GROUP", "SHORTEST_K_GROUP", 2),
            ("ANY CHEAPEST", "ANY_CHEAPEST", None),
            ("TOP 4 CHEAPEST", "TOP_K_CHEAPEST", 4),
        ],
    )
    def test_selectors(self, text, kind, k):
        stmt = parse_match(f"MATCH {text} (a)->*(b)")
        selector = stmt.paths[0].selector
        assert selector.kind == kind
        assert selector.k == k

    def test_cheapest_cost_property(self):
        stmt = parse_match("MATCH ANY CHEAPEST COST weight (a)->*(b)")
        assert stmt.paths[0].selector.cost_property == "weight"

    def test_cost_property_may_be_keyword(self):
        stmt = parse_match("MATCH ANY CHEAPEST COST cost (a)->*(b)")
        assert stmt.paths[0].selector.cost_property == "cost"

    @pytest.mark.parametrize("restrictor", ["TRAIL", "ACYCLIC", "SIMPLE"])
    def test_restrictors(self, restrictor):
        stmt = parse_match(f"MATCH {restrictor} (a)->*(b)")
        assert stmt.paths[0].restrictor == restrictor

    def test_selector_and_restrictor_combined(self):
        stmt = parse_match("MATCH ALL SHORTEST TRAIL p = (a)->*(b)")
        path = stmt.paths[0]
        assert path.selector.kind == "ALL_SHORTEST"
        assert path.restrictor == "TRAIL"
        assert path.path_var == "p"

    def test_restrictor_in_paren(self):
        stmt = parse_match("MATCH [TRAIL (a)->*(b)]")
        paren = stmt.paths[0].pattern
        assert isinstance(paren, ast.ParenPattern)
        assert paren.restrictor == "TRAIL"


class TestGraphPatterns:
    def test_comma_separated_paths(self):
        stmt = parse_match("MATCH (a)->(b), (b)->(c), (c)~(d)")
        assert len(stmt.paths) == 3

    def test_final_where(self):
        stmt = parse_match("MATCH (a)->(b) WHERE a.x = b.y")
        assert stmt.where is not None

    def test_pgql_style_repeated_match(self):
        stmt = parse_match("MATCH (a)->(b), MATCH (b)->(c)")
        assert len(stmt.paths) == 2

    def test_union_precedence(self):
        stmt = parse_match("MATCH (a)->(b) | (c)->(d)")
        alt = stmt.paths[0].pattern
        assert isinstance(alt, ast.Alternation)
        assert len(alt.branches) == 2
        assert all(isinstance(b, ast.Concatenation) for b in alt.branches)

    def test_mixed_union_operators(self):
        alt = parse_match("MATCH (a) | (b) |+| (c)").paths[0].pattern
        assert alt.operators == ["|", "|+|"]
        assert alt.has_multiset()

    def test_trailing_garbage_rejected(self):
        with pytest.raises(GpmlSyntaxError):
            parse_match("MATCH (a) garbage")


class TestExpressionParsing:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3 = 7 AND NOT FALSE")
        assert isinstance(expr, E.And)

    def test_comparison_chain_is_not_allowed(self):
        with pytest.raises(GpmlSyntaxError):
            parse_expression("1 < 2 < 3")

    def test_is_predicates(self):
        assert isinstance(parse_expression("x.a IS NULL"), E.IsNull)
        assert isinstance(parse_expression("x.a IS NOT NULL"), E.IsNull)
        assert isinstance(parse_expression("e IS DIRECTED"), E.IsDirected)
        assert isinstance(parse_expression("s IS SOURCE OF e"), E.IsSourceOf)
        assert isinstance(parse_expression("d IS NOT DESTINATION OF e"), E.IsDestinationOf)

    def test_aggregates(self):
        agg = parse_expression("SUM(t.amount)")
        assert isinstance(agg, E.Aggregate)
        assert (agg.func, agg.var, agg.prop) == ("SUM", "t", "amount")
        star = parse_expression("COUNT(e.*)")
        assert star.prop is None
        distinct = parse_expression("COUNT(DISTINCT e)")
        assert distinct.distinct

    def test_listagg_separator(self):
        agg = parse_expression("LISTAGG(e.ID, '; ')")
        assert agg.separator == "; "

    def test_same_and_all_different(self):
        same = parse_expression("SAME(p, q, r)")
        assert isinstance(same, E.Same) and same.vars == ("p", "q", "r")
        diff = parse_expression("ALL_DIFFERENT(p, q)")
        assert isinstance(diff, E.AllDifferent)

    def test_property_name_may_be_keyword(self):
        expr = parse_expression("x.cost > 1")
        assert "x.cost" in str(expr)

    def test_function_call(self):
        expr = parse_expression("length(p) + abs(0 - 2)")
        assert "length(p)" in str(expr)

    def test_magnitude_literal(self):
        expr = parse_expression("t.amount > 5M")
        assert "5000000" in str(expr)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "query",
        [
            "MATCH (x:Account WHERE x.isBlocked = 'no')",
            "MATCH (a)<-[e:Transfer]-(b)",
            "MATCH (a) -[:Transfer]->{2,5} (b)",
            "MATCH TRAIL p = (a) -[t:Transfer]->* (b)",
            "MATCH ALL SHORTEST TRAIL p = (a) ->* (b) ->* (c)",
            "MATCH (c:City) |+| (c:Country)",
            "MATCH (x) [->(y)]?",
            "MATCH (x:Account|IP)",
            "MATCH (:!%)",
            "MATCH (x)-[e]-(y) WHERE (e IS DIRECTED AND x IS SOURCE OF e)",
            "MATCH SHORTEST 3 GROUP (a) ->* (b)",
            "MATCH [TRAIL (x) -[e]->* (y) WHERE COUNT(e) > 1]",
        ],
    )
    def test_round_trip(self, query):
        roundtrip(query)

    def test_path_pattern_entry_point(self):
        path = parse_path_pattern("TRAIL p = (a)->*(b)")
        assert path.restrictor == "TRAIL"
        assert path.path_var == "p"
