"""Property/label index maintenance across every mutation kind."""

import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder, PropertyGraph


def bank() -> PropertyGraph:
    return (
        GraphBuilder("bank")
        .node("a1", "Account", owner="Ada", tier=1)
        .node("a2", "Account", owner="Bob", tier=2)
        .node("a3", "Account", owner="Cyd", tier=2)
        .node("p1", "Phone", number=7)
        .directed("t1", "a1", "a2", "Transfer", amount=100)
        .directed("t2", "a2", "a3", "Transfer", amount=200)
        .undirected("h1", "a1", "p1", "hasPhone")
        .build()
    )


class TestCreateAndLookup:
    def test_label_scoped_index(self):
        graph = bank()
        graph.create_index("Account", "owner")
        assert graph.has_index("Account", "owner")
        assert graph.index_lookup("Account", "owner", "Bob") == {"a2"}
        assert graph.index_lookup("Account", "owner", "Nobody") == frozenset()

    def test_unscoped_index_covers_all_nodes(self):
        graph = bank()
        assert graph.index_lookup(None, "number", 7) == {"p1"}
        assert graph.has_index(None, "number")  # created lazily

    def test_lazy_creation_can_be_disabled(self):
        graph = bank()
        assert graph.index_lookup("Account", "tier", 2, create=False) == frozenset()
        assert not graph.has_index("Account", "tier")
        assert graph.index_lookup("Account", "tier", 2) == {"a2", "a3"}

    def test_edge_index(self):
        graph = bank()
        graph.create_index("Transfer", "amount", kind="edge")
        assert graph.index_lookup("Transfer", "amount", 200, kind="edge") == {"t2"}

    def test_drop_and_listing(self):
        graph = bank()
        graph.create_index("Account", "owner")
        graph.create_index(None, "number")
        assert graph.indexes() == [("node", None, "number"), ("node", "Account", "owner")]
        graph.drop_index("Account", "owner")
        assert not graph.has_index("Account", "owner")

    def test_bad_kind_rejected(self):
        with pytest.raises(GraphError):
            bank().create_index("Account", "owner", kind="hyperedge")


class TestMaintenance:
    def test_add_node_joins_index(self):
        graph = bank()
        graph.create_index("Account", "tier")
        graph.add_node("a4", labels=["Account"], properties={"tier": 2})
        assert graph.index_lookup("Account", "tier", 2) == {"a2", "a3", "a4"}

    def test_remove_node_leaves_index(self):
        graph = bank()
        graph.create_index("Account", "tier")
        graph.remove_node("a2")
        assert graph.index_lookup("Account", "tier", 2) == {"a3"}
        assert graph.index_lookup("Account", "tier", 1) == {"a1"}

    def test_remove_node_cascades_to_edge_indexes(self):
        graph = bank()
        graph.create_index("Transfer", "amount", kind="edge")
        graph.remove_node("a2")  # removes t1 and t2 with it
        assert graph.index_lookup("Transfer", "amount", 100, kind="edge") == frozenset()
        assert graph.index_lookup("Transfer", "amount", 200, kind="edge") == frozenset()

    def test_remove_edge_leaves_index(self):
        graph = bank()
        graph.create_index("Transfer", "amount", kind="edge")
        graph.remove_edge("t1")
        assert graph.index_lookup("Transfer", "amount", 100, kind="edge") == frozenset()
        assert graph.index_lookup("Transfer", "amount", 200, kind="edge") == {"t2"}

    def test_set_property_moves_buckets(self):
        graph = bank()
        graph.create_index("Account", "owner")
        graph.set_property("a2", "owner", "Zed")
        assert graph.index_lookup("Account", "owner", "Bob") == frozenset()
        assert graph.index_lookup("Account", "owner", "Zed") == {"a2"}

    def test_set_property_adds_previously_missing(self):
        graph = bank()
        graph.create_index(None, "number")
        graph.set_property("a1", "number", 7)
        assert graph.index_lookup(None, "number", 7) == {"a1", "p1"}

    def test_set_labels_updates_label_and_property_indexes(self):
        graph = bank()
        graph.create_index("Account", "owner")
        graph.set_labels("a2", ["Archived"])
        assert graph.index_lookup("Account", "owner", "Bob") == frozenset()
        assert {n.id for n in graph.nodes_with_label("Account")} == {"a1", "a3"}
        assert {n.id for n in graph.nodes_with_label("Archived")} == {"a2"}
        graph.set_labels("a2", ["Account", "Archived"])
        assert graph.index_lookup("Account", "owner", "Bob") == {"a2"}

    def test_set_labels_on_edge_invalidates_incidence_cache(self):
        graph = bank()
        assert [inc.edge for inc in graph.incidences_with_label("a1", "Transfer")] == ["t1"]
        graph.set_labels("t1", ["Wire"])
        assert graph.incidences_with_label("a1", "Transfer") == []
        assert [inc.edge for inc in graph.incidences_with_label("a1", "Wire")] == ["t1"]

    def test_unhashable_values_are_tolerated(self):
        graph = bank()
        graph.create_index(None, "tags")
        graph.set_property("a1", "tags", ["x", "y"])  # unhashable; not indexed
        assert graph.index_lookup(None, "tags", "x") == frozenset()
        graph.set_property("a1", "tags", "x")
        assert graph.index_lookup(None, "tags", "x") == {"a1"}


class TestVersioning:
    def test_every_mutation_bumps_version(self):
        graph = bank()
        version = graph.version
        graph.add_node("z")
        graph.add_edge("ez", "z", "a1", labels=["E"])
        graph.set_property("z", "v", 1)
        graph.set_labels("z", ["Z"])
        graph.remove_edge("ez")
        graph.remove_node("z")
        assert graph.version >= version + 6

    def test_index_creation_is_not_a_mutation(self):
        graph = bank()
        version = graph.version
        graph.create_index("Account", "owner")
        assert graph.version == version
