"""Cardinality statistics and the version-keyed planner catalog."""

from repro.graph import GraphBuilder, cardinality_statistics
from repro.planner.stats import StatisticsCatalog


class TestCardinalityStatistics:
    def test_label_counts(self, fig1):
        stats = cardinality_statistics(fig1)
        assert stats.node_label_counts["Account"] == 6
        assert stats.node_label_counts["Phone"] == 4
        assert stats.edge_label_counts["Transfer"] == 8
        assert stats.num_nodes == fig1.num_nodes
        assert stats.num_edges == fig1.num_edges

    def test_multi_label_nodes_count_once_per_label(self, fig1):
        stats = cardinality_statistics(fig1)
        # Ankh-Morpork carries both City and Country in Figure 1.
        assert stats.node_label_counts["City"] == 1
        assert stats.node_label_counts["Country"] == 2

    def test_distinct_values(self, fig1):
        stats = cardinality_statistics(fig1)
        assert stats.distinct("node", "Account", "owner") == 6
        assert stats.distinct("node", "Account", "isBlocked") == 2
        assert stats.distinct("node", "Account", "missing") == 0
        # The None label aggregates across labels.
        assert stats.distinct("node", None, "number") == 6  # 4 phones + 2 IPs

    def test_label_pair_counts(self, fig1):
        stats = cardinality_statistics(fig1)
        # Every Transfer edge connects Account -> Account.
        assert stats.pair_selectivity("Transfer", "Account", "Account") == 1.0
        assert stats.pair_selectivity("Transfer", "Phone", "Account") == 0.0
        pairs = stats.edge_label_pairs["isLocatedIn"]
        # All 6 isLocatedIn edges end at a Country; 3 of the targets are
        # also the City Ankh-Morpork (multi-label endpoints count per label).
        assert pairs[("Account", "Country")] == 6
        assert pairs[("Account", "City")] == 3

    def test_undirected_edges_count_both_orientations(self):
        graph = (
            GraphBuilder("u")
            .node("a", "A")
            .node("b", "B")
            .undirected("e", "a", "b", "E")
            .build()
        )
        stats = cardinality_statistics(graph)
        pairs = stats.edge_label_pairs["E"]
        assert pairs[("A", "B")] == 1
        assert pairs[("B", "A")] == 1

    def test_unlabeled_bucket(self):
        graph = GraphBuilder("plain").node("x", v=1).node("y", v=2).build()
        stats = cardinality_statistics(graph)
        assert stats.node_label_counts[None] == 2
        assert stats.distinct("node", None, "v") == 2


class TestCatalogCache:
    def test_catalog_is_cached_per_version(self, fig1):
        first = StatisticsCatalog.for_graph(fig1)
        assert StatisticsCatalog.for_graph(fig1) is first

    def test_mutation_invalidates_catalog(self, fig1):
        stale = StatisticsCatalog.for_graph(fig1)
        assert stale.stats.node_label_counts["Account"] == 6
        fig1.add_node("extra", labels=["Account"], properties={"owner": "Zed"})
        fresh = StatisticsCatalog.for_graph(fig1)
        assert fresh is not stale
        assert fresh.stats.node_label_counts["Account"] == 7
        assert fresh.version == fig1.version

    def test_property_mutation_invalidates_catalog(self, fig1):
        stale = StatisticsCatalog.for_graph(fig1)
        fig1.set_property("a1", "owner", "Mike")  # now a duplicate owner
        fresh = StatisticsCatalog.for_graph(fig1)
        assert fresh is not stale
        assert fresh.stats.distinct("node", "Account", "owner") == 5

    def test_estimates(self, fig1):
        catalog = StatisticsCatalog.for_graph(fig1)
        assert catalog.label_scan_estimate(frozenset({"Account"})) == 6.0
        assert catalog.label_scan_estimate(None) == fig1.num_nodes
        # 6 accounts / 6 distinct owners = 1 expected match
        assert catalog.equality_estimate(frozenset({"Account"}), "owner") == 1.0
        # An unknown property estimates to zero matches.
        assert catalog.equality_estimate(frozenset({"Account"}), "nope") == 0.0
        assert catalog.edge_fanout("Transfer") == 8 / fig1.num_nodes
