"""Pattern/binding reversal and anchor selection.

The heart of the planner's correctness argument: a right-anchored run is
the reversed pattern executed forward, with accepted bindings mapped back
— so planned and naive engines must agree bag-for-bag on every query.
"""

import pytest

from repro.datasets import random_transfer_network
from repro.gpml.bindings import ElementaryBinding, PathBinding
from repro.gpml.engine import match, prepare
from repro.gpml.matcher import Matcher, MatcherConfig
from repro.gpml.normalize import normalize_graph_pattern
from repro.gpml.parser import parse_match
from repro.graph import GraphBuilder
from repro.planner.anchor import (
    LEFT,
    RIGHT,
    is_reversible,
    pinned_end_nodes,
    reverse_binding,
    reverse_pattern,
)
from repro.planner.plan import plan_query

NAIVE = MatcherConfig(use_planner=False)


@pytest.fixture()
def chain_rare():
    """A chain of N nodes ending in a single Rare node (right-skewed)."""
    builder = GraphBuilder("chain_rare")
    for i in range(6):
        builder.node(f"n{i}", "N", idx=i)
    builder.node("z", "Rare", idx=99)
    for i in range(5):
        builder.directed(f"e{i}", f"n{i}", f"n{i + 1}", "E", w=i)
    builder.directed("ez", "n5", "z", "E", w=9)
    return builder.build()


def canon(result):
    return sorted(
        (
            tuple(sorted((k, repr(v)) for k, v in row.values.items())),
            tuple(str(p) for p in row.paths),
        )
        for row in result.rows
    )


class TestPatternReversal:
    def normalized(self, query):
        return normalize_graph_pattern(parse_match(query)).paths[0].pattern

    def test_edge_orientation_flips(self):
        pattern = self.normalized("MATCH (a)-[e]->(b)")
        assert str(reverse_pattern(pattern)) == "(b)<-[e]-(a)"

    def test_half_orientations_mirror(self):
        pattern = self.normalized("MATCH (a)<~[e]~(b)")
        assert str(reverse_pattern(pattern)) == "(b)~[e]~>(a)"

    def test_double_reversal_is_identity(self):
        for query in [
            "MATCH (a)-[e:E]->(b)~[f]~(c)",
            "MATCH TRAIL (a) [(x)-[e]->(y)]{1,3} (b:B)",
            "MATCH (a)-[e]->(b) | (a)<-[f]-(b:B)",
            "MATCH (x) [-[e]->(y)]? (z:Z)",
        ]:
            pattern = self.normalized(query)
            assert str(reverse_pattern(reverse_pattern(pattern))) == str(pattern)

    def test_pinned_ends(self):
        pattern = self.normalized("MATCH (a:A)-[e]->{1,2}(b:B)")
        left = pinned_end_nodes(pattern, LEFT)
        right = pinned_end_nodes(pattern, RIGHT)
        assert [n.var for n in left] == ["a"]
        assert [n.var for n in right] == ["b"]

    def test_pinned_end_skips_optional_prefix(self):
        pattern = self.normalized("MATCH [(a:A)-[e]->(m:M)]? (b:B)")
        left = pinned_end_nodes(pattern, LEFT)
        assert sorted(n.var for n in left) == ["a", "b"]

    def test_skippable_suffix_pins_both_candidates(self):
        # With a {0,n} suffix the end is either y (>=1 laps) or a (0 laps).
        pattern = self.normalized("MATCH (a:A) [-[e]->(y:Y)]{0,2}")
        right = pinned_end_nodes(pattern, RIGHT)
        assert sorted(n.var for n in right) == ["a", "y"]

    def test_unpinnable_end(self):
        # An unlabeled alternation branch inside a skippable suffix pins
        # nothing; neither does a pattern that is all-skippable.
        pattern = self.normalized("MATCH [(a:A)-[e]->(m:M)]{0,2}")
        assert pinned_end_nodes(pattern, RIGHT) is None


class TestBindingReversal:
    def test_iteration_annotations_renumber(self):
        binding = PathBinding(
            elements=("u", "e1", "v", "e2", "w"),
            entries=(
                ElementaryBinding("a", (), "u"),
                ElementaryBinding("e", ((1, 1),), "e1"),
                ElementaryBinding("n", ((1, 1),), "v"),
                ElementaryBinding("e", ((1, 2),), "e2"),
                ElementaryBinding("n", ((1, 2),), "w"),
            ),
        )
        reversed_binding = reverse_binding(binding)
        assert reversed_binding.elements == ("w", "e2", "v", "e1", "u")
        # Iteration i of k becomes k+1-i, in reversed entry order.
        assert reversed_binding.entries == (
            ElementaryBinding("n", ((1, 1),), "w"),
            ElementaryBinding("e", ((1, 1),), "e2"),
            ElementaryBinding("n", ((1, 2),), "v"),
            ElementaryBinding("e", ((1, 2),), "e1"),
            ElementaryBinding("a", (), "u"),
        )

    def test_bag_tags_renumber(self):
        binding = PathBinding(
            elements=("u",),
            entries=(ElementaryBinding("x", ((2, 3),), "u"),),
            bag_tags=frozenset({(5, 0, ((2, 1),)), (5, 1, ((2, 3),))}),
        )
        reversed_binding = reverse_binding(binding)
        assert reversed_binding.bag_tags == frozenset(
            {(5, 0, ((2, 3),)), (5, 1, ((2, 1),))}
        )


DIFFERENTIAL_QUERIES = [
    "MATCH (a) (-[e:E]->(n)){1,4} (b:Rare)",
    "MATCH TRAIL (a) (-[e:E]->(n))* (b:Rare)",
    "MATCH ACYCLIC (a) [(x)-[e]->(y) WHERE e.w > 0]* (b:Rare)",
    "MATCH ANY SHORTEST p = (a)-[e:E]->*(b:Rare)",
    "MATCH ALL SHORTEST p = (a)-[e]->*(b:Rare)",
    "MATCH SHORTEST 2 p = (a)-[e]->*(b:Rare)",
    "MATCH TOP 2 CHEAPEST COST w p = (a)-[e]->*(b:Rare)",
    "MATCH (a)-[e]->(m) |+| (a)-[f]->(m:Rare)",
    "MATCH (x:Rare) | (x WHERE x.idx = 3)",
    "MATCH (a WHERE a.idx = 0)-[e]->(b), (b)-[f]->(c:Rare)",
    "MATCH (s:Rare)<-[e]-(m)<-[f]-(t)",
]


class TestPlannedEqualsNaive:
    @pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
    def test_chain_rare(self, chain_rare, query):
        assert canon(match(chain_rare, query)) == canon(match(chain_rare, query, NAIVE))

    def test_group_variable_order_survives_reversal(self, chain_rare):
        prepared = prepare("MATCH (a) (-[e:E]->(n)){1,4} (b:Rare)")
        plan = plan_query(chain_rare, prepared)
        assert plan.patterns[0].side == RIGHT  # the interesting case
        result = match(chain_rare, prepared)
        longest = max(result.rows, key=lambda row: len(row["e"]))
        assert [edge.id for edge in longest["e"]] == ["e2", "e3", "e4", "ez"]

    def test_banking_graph_queries(self):
        graph = random_transfer_network(60, 150, seed=7)
        for query in [
            "MATCH (a:Account)-[t:Transfer]->(b:Account WHERE b.owner='owner7')",
            "MATCH TRAIL (a:Account WHERE a.isBlocked='yes')"
            "-[t:Transfer]->{1,2}(b:Account WHERE b.owner='owner3')",
            "MATCH (p:Phone)~[h:hasPhone]~(a:Account)-[l:isLocatedIn]->(c:City)",
        ]:
            assert canon(match(graph, query)) == canon(match(graph, query, NAIVE))


class TestAnchorChoice:
    def test_selective_right_end_wins(self, chain_rare):
        prepared = prepare("MATCH (a)-[e:E]->(b:Rare)")
        plan = plan_query(chain_rare, prepared)
        assert plan.patterns[0].side == RIGHT

    def test_left_wins_ties(self, chain_rare):
        prepared = prepare("MATCH (a:Rare)-[e]->(b:Rare)")
        plan = plan_query(chain_rare, prepared)
        assert plan.patterns[0].side == LEFT

    def test_listagg_prefilter_blocks_reversal(self, chain_rare):
        prepared = prepare(
            "MATCH (a) [(x)-[e:E]->(y)]{1,2} (b:Rare WHERE LISTAGG(e) <> '')"
        )
        assert not is_reversible(prepared.analysis.paths[0])
        plan = plan_query(chain_rare, prepared)
        assert plan.patterns[0].side == LEFT
        # And the query still runs correctly on the left anchor.
        assert canon(match(chain_rare, prepared)) == canon(
            match(chain_rare, prepared.text, NAIVE)
        )


class TestCandidateReduction:
    """The acceptance criterion: fewer start candidates than the seed engine."""

    def test_right_anchor_counts(self):
        graph = random_transfer_network(200, 400, seed=3)
        query = "MATCH (a:Account)-[t:Transfer]->(b:Account WHERE b.owner='owner11')"
        prepared = prepare(query)

        naive_matcher = Matcher(
            graph, prepared.nfas[0], prepared.normalized.paths[0].pattern, NAIVE
        )
        list(naive_matcher.enumerate_all())  # generator: drain to run the search
        naive_count = naive_matcher.initial_candidate_count

        plan = plan_query(graph, prepared)
        match(graph, prepared)
        planned_count = plan.patterns[0].observed_candidates

        assert naive_count == 200  # label scan over every account
        assert planned_count == 1  # property-index probe on owner
        assert planned_count < naive_count

    def test_sargable_unlabeled_left_end(self):
        """Satellite: (x WHERE x.id = 5) without a label is index-assisted."""
        builder = GraphBuilder("ids")
        for i in range(50):
            builder.node(f"v{i}", id=i)
        for i in range(49):
            builder.directed(f"e{i}", f"v{i}", f"v{i + 1}", "E")
        graph = builder.build()
        prepared = prepare("MATCH (x WHERE x.id = 5)-[e:E]->(y)")
        matcher = Matcher(
            graph, prepared.nfas[0], prepared.normalized.paths[0].pattern, NAIVE
        )
        result = list(matcher.enumerate_all())
        assert matcher.initial_candidate_count == 1  # index, not a full scan
        assert len(result) == 1
        assert graph.has_index(None, "id")
