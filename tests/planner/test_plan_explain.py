"""Plan caching, join ordering, EXPLAIN PLAN rendering, and the CLI."""

from repro.cli import main
from repro.datasets import random_transfer_network
from repro.gpml.engine import match, prepare
from repro.gpml.explain import explain_plan
from repro.gpml.matcher import MatcherConfig
from repro.planner.plan import plan_query

NAIVE = MatcherConfig(use_planner=False)


def canon(result):
    return sorted(
        (
            tuple(sorted((k, repr(v)) for k, v in row.values.items())),
            tuple(str(p) for p in row.paths),
        )
        for row in result.rows
    )


class TestPlanCaching:
    def test_plan_cached_until_mutation(self, fig1):
        prepared = prepare("MATCH (x:Account)-[t:Transfer]->(y:Account)")
        first = plan_query(fig1, prepared)
        assert plan_query(fig1, prepared) is first
        fig1.add_node("new_account", labels=["Account"])
        second = plan_query(fig1, prepared)
        assert second is not first
        assert second.graph_version == fig1.version

    def test_plans_are_per_graph(self, fig1):
        prepared = prepare("MATCH (x:Account)")
        other = random_transfer_network(20, 30, seed=1)
        plan_fig1 = plan_query(fig1, prepared)
        plan_other = plan_query(other, prepared)
        assert plan_other is not plan_fig1
        assert plan_other.num_nodes == other.num_nodes


class TestJoinOrdering:
    def test_selective_pattern_joins_first(self, fig1):
        prepared = prepare(
            "MATCH (a:Account)-[t1:Transfer]->(b:Account), "
            "(b)-[t2:Transfer]->(c:Account WHERE c.owner='Mike')"
        )
        plan = plan_query(fig1, prepared)
        assert plan.join_order == [1, 0]
        assert plan.join_sharing[0] == ["b"]

    def test_connected_before_smaller_cross_product(self, fig1):
        # #3 is tiny but unconnected; #2 shares b with #1 and must join first.
        prepared = prepare(
            "MATCH (a:Account)-[t1:Transfer]->(b:Account), "
            "(b)-[t2:Transfer]->(c:Account), "
            "(p:Phone WHERE p.number = 14)"
        )
        plan = plan_query(fig1, prepared)
        order = plan.join_order
        assert order.index(2) > order.index(1) or order[0] == 2
        # Whatever the order, both patterns sharing b join connectedly.
        assert set(order) == {0, 1, 2}

    def test_rows_identical_and_in_textual_order(self, fig1):
        query = (
            "MATCH (a:Account)-[t1:Transfer]->(b:Account), "
            "(b)-[t2:Transfer]->(c:Account WHERE c.owner='Mike'), "
            "(p:Phone)~[h:hasPhone]~(a)"
        )
        planned = match(fig1, query)
        naive = match(fig1, query, NAIVE)
        assert canon(planned) == canon(naive)
        # Not just the same bag: the same row order (textual nested-loop).
        assert planned.to_dicts() == naive.to_dicts()
        assert [
            [str(p) for p in row.paths] for row in planned.rows
        ] == [[str(p) for p in row.paths] for row in naive.rows]


class TestExplainPlan:
    def test_shows_anchor_index_estimates_and_join_order(self, fig1):
        text = explain_plan(
            fig1,
            "MATCH (a:Account)-[t1:Transfer]->(b:Account), "
            "(b)-[t2:Transfer]->(c:Account WHERE c.owner='Mike')",
        )
        assert "anchor: left at (a:Account) via label scan Account" in text
        assert "anchor: right at (c:Account WHERE c.owner = 'Mike') "
        assert "property index Account(owner='Mike')" in text
        assert "[est 1 of 14 nodes]" in text
        assert "estimated result size:" in text
        assert "considered:" in text
        assert "join order: #2 -> #1 (join on b)" in text

    def test_full_scan_rendered(self, fig1):
        text = explain_plan(fig1, "MATCH (x)")
        assert "full node scan" in text

    def test_huge_quantifier_lower_bound_does_not_overflow(self, fig1):
        # fan-out > 1 raised to a large lower bound must saturate, not
        # crash planning (estimates only need relative order).
        query = "MATCH ACYCLIC (a:Account) (-[e:Transfer]->(n)){2000,} (z)"
        text = explain_plan(fig1, query)
        assert "estimated result size:" in text
        result = match(fig1, query)
        assert len(result.rows) == 0  # 2000 hops can't fit 14 nodes

    def test_observed_candidates_after_execution(self, fig1):
        prepared = prepare("MATCH (a:Account)-[t:Transfer]->(b)")
        match(fig1, prepared)
        text = explain_plan(fig1, prepared)
        assert "observed start candidates: 6" in text


class TestCli:
    def test_explain_plan_flag(self, capsys):
        exit_code = main(
            ["--explain-plan", "MATCH (x:Account WHERE x.owner='Mike')"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "EXPLAIN PLAN" in captured.out
        assert "property index Account(owner='Mike')" in captured.out

    def test_query_still_runs_with_planner(self, capsys):
        exit_code = main(["MATCH (x:Account WHERE x.owner='Mike')"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "1 row(s)" in captured.out
