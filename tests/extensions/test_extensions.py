"""Extensions: match modes, cheapest paths, JSON export (§7.1 LOs)."""

import json

import pytest

from repro.extensions import (
    any_cheapest_path,
    filter_edge_isomorphic,
    filter_node_isomorphic,
    result_to_json,
    result_to_jsonable,
    top_k_cheapest_paths,
)
from repro.graph import GraphBuilder
from repro.gpml import match


@pytest.fixture()
def toll_graph():
    return (
        GraphBuilder("toll")
        .node("s", "N", name="start")
        .node("m", "N")
        .node("t", "N", name="goal")
        .directed("fast", "s", "t", "R", toll=10)
        .directed("slow1", "s", "m", "R", toll=2)
        .directed("slow2", "m", "t", "R", toll=3)
        .build()
    )


class TestMatchModes:
    def test_edge_isomorphic_filters_shared_edges(self, two_cycle):
        result = match(two_cycle, "MATCH (x)-[r1]-(y), (y)-[r2]-(z)")
        filtered = filter_edge_isomorphic(result)
        assert len(filtered) < len(result)
        for row in filtered:
            edge_ids = [e for p in row.paths for e in p.edge_ids]
            assert len(edge_ids) == len(set(edge_ids))

    def test_node_isomorphic_is_stricter(self, fig1):
        result = match(fig1, "MATCH (x)-[:Transfer]->(y)-[:Transfer]->(z)")
        edge_iso = filter_edge_isomorphic(result)
        node_iso = filter_node_isomorphic(result)
        assert len(node_iso) <= len(edge_iso) <= len(result)
        for row in node_iso:
            node_ids = [n for p in row.paths for n in p.node_ids]
            assert len(node_ids) == len(set(node_ids))

    def test_variables_preserved(self, fig1):
        result = match(fig1, "MATCH (x)-[t:Transfer]->(y)")
        filtered = filter_edge_isomorphic(result)
        assert filtered.variables == result.variables


class TestCheapest:
    def test_any_cheapest_path(self, toll_graph):
        path = any_cheapest_path(
            toll_graph,
            "(a WHERE a.name='start')-[e:R]->*(b WHERE b.name='goal')",
            cost_property="toll",
        )
        assert str(path) == "path(s,slow1,m,slow2,t)"
        assert path.cost("toll") == 5.0

    def test_no_match_returns_none(self, toll_graph):
        assert (
            any_cheapest_path(
                toll_graph,
                "(a WHERE a.name='nope')-[e:R]->*(b WHERE b.name='goal')",
                cost_property="toll",
            )
            is None
        )

    def test_top_k(self, toll_graph):
        paths = top_k_cheapest_paths(
            toll_graph,
            "(a WHERE a.name='start')-[e:R]->+(b WHERE b.name='goal')",
            k=2,
            cost_property="toll",
        )
        assert [str(p) for p in paths] == [
            "path(s,slow1,m,slow2,t)",
            "path(s,fast,t)",
        ]

    def test_negative_costs_rejected(self):
        from repro.errors import GpmlEvaluationError

        g = (
            GraphBuilder("neg")
            .node("a", "N")
            .node("b", "N")
            .directed("e", "a", "b", "R", toll=-1)
            .build()
        )
        with pytest.raises(GpmlEvaluationError):
            match(g, "MATCH ANY CHEAPEST COST toll p = (a)-[e]->*(b)")


class TestJsonExport:
    def test_elements_and_groups(self, fig1):
        result = match(
            fig1, "MATCH (a WHERE a.owner='Scott')-[e:Transfer]->{1,2}(b)"
        )
        data = result_to_jsonable(result)
        assert all(isinstance(row["e"], list) for row in data)
        first = min(data, key=lambda r: len(r["e"]))
        assert first["a"]["id"] == "a1"
        assert first["a"]["labels"] == ["Account"]
        assert first["e"][0]["directed"] is True
        assert first["e"][0]["from"] == "a1"

    def test_paths_and_nulls(self, fig1):
        result = match(
            fig1, "MATCH p = (x WHERE x.owner='Jay') [-[:Transfer]->(y)]?"
        )
        data = result_to_jsonable(result)
        ys = sorted(
            ((row["y"] or {}).get("id", None) for row in data), key=str
        )
        assert ys == ["a6", None] or ys == [None, "a6"]
        for row in data:
            assert set(row["p"]) == {"length", "nodes", "edges", "elements"}

    def test_valid_json(self, fig1):
        result = match(fig1, "MATCH (c:City)")
        parsed = json.loads(result_to_json(result))
        assert parsed[0]["c"]["properties"]["name"] == "Ankh-Morpork"
