"""Path macros (§7.1 LO) and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.errors import GpmlSyntaxError
from repro.extensions.macros import MacroRegistry
from repro.graph import graph_to_json


class TestMacros:
    def test_simple_expansion(self, fig1):
        macros = MacroRegistry()
        macros.define("hop", "-[:Transfer]->")
        result = macros.match(fig1, "MATCH (a) $hop$ (b) $hop$ (c)")
        assert len(result) == 11  # all 2-step transfer walks

    def test_nested_macros(self):
        macros = MacroRegistry()
        macros.define("hop", "-[:Transfer]->")
        macros.define("two", "$hop$ () $hop$")
        assert (
            macros.expand("MATCH (a) $two$ (b)")
            == "MATCH (a) -[:Transfer]-> () -[:Transfer]-> (b)"
        )

    def test_multiple_use_is_the_point(self, fig1):
        # "Path macros for multiple use in a query" (§7.1)
        macros = MacroRegistry()
        macros.define("located", "-[:isLocatedIn]->(:City WHERE SAME(g, g))")
        macros.define("in_am", "-[:isLocatedIn]->(g:City WHERE g.name='Ankh-Morpork')")
        result = macros.match(
            fig1,
            "MATCH (x:Account WHERE x.isBlocked='no') $in_am$, "
            "(y:Account WHERE y.isBlocked='yes') $in_am$, "
            "TRAIL (x)-[:Transfer]->+(y)",
        )
        pairs = sorted({(r["x"]["owner"], r["y"]["owner"]) for r in result})
        assert pairs == [("Aretha", "Jay"), ("Dave", "Jay")]

    def test_cycle_detected(self):
        macros = MacroRegistry()
        macros.define("a", "$b$")
        macros.define("b", "$a$")
        with pytest.raises(GpmlSyntaxError, match="cyclic"):
            macros.expand("MATCH (x) $a$ (y)")

    def test_unknown_macro(self):
        macros = MacroRegistry()
        with pytest.raises(GpmlSyntaxError, match="unknown macro"):
            macros.expand("MATCH (x) $nope$ (y)")

    def test_duplicate_definition(self):
        macros = MacroRegistry()
        macros.define("m", "->")
        with pytest.raises(GpmlSyntaxError):
            macros.define("m", "<-")

    def test_invalid_name(self):
        with pytest.raises(GpmlSyntaxError):
            MacroRegistry().define("2bad", "->")

    def test_names_listing(self):
        macros = MacroRegistry()
        macros.define("b", "->")
        macros.define("a", "<-")
        assert macros.names() == ["a", "b"]


class TestCli:
    def test_table_output(self, capsys):
        code = main(['MATCH (x:Account WHERE x.isBlocked="yes")'])
        out = capsys.readouterr().out
        assert code == 0
        assert "a4" in out and "1 row(s)" in out

    def test_json_output(self, capsys):
        code = main(["--format", "json", 'MATCH (c:City)'])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["c"]["properties"]["name"] == "Ankh-Morpork"

    def test_paths_output(self, capsys):
        code = main([
            "--format", "paths",
            'MATCH ANY SHORTEST p = (a WHERE a.owner="Dave")-[:Transfer]->+'
            '(b WHERE b.owner="Aretha")',
        ])
        assert code == 0
        assert "path(a6,t5,a3,t2,a2)" in capsys.readouterr().out

    def test_explain(self, capsys):
        code = main(["--explain", "MATCH TRAIL (a)-[e:Transfer]->*(b)"])
        assert code == 0
        assert "strategy: enumerate" in capsys.readouterr().out

    def test_custom_graph_file(self, tmp_path, capsys, two_cycle):
        path = tmp_path / "g.json"
        path.write_text(graph_to_json(two_cycle))
        code = main(["--graph", str(path), "MATCH (a)-[e:E]->(b)"])
        assert code == 0
        assert "2 row(s)" in capsys.readouterr().out

    def test_syntax_error_exit_code(self, capsys):
        code = main(["MATCH (x"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_termination_error_reported(self, capsys):
        code = main(["MATCH (a)-[e]->*(b)"])
        assert code == 1
        assert "Section 5" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        code = main(["--graph", "/nonexistent.json", "MATCH (a)"])
        assert code == 1
