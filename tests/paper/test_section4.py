"""Section 4: every example query with the paper's stated results."""

import pytest

from repro.gpml import match
from repro.values import is_null


class TestSection41NodesAndEdges:
    def test_all_nodes(self, fig1):
        # "MATCH (x) ... returns bindings that map x to accounts, cities,
        # phones, and IPs"
        result = match(fig1, "MATCH (x)")
        assert len(result) == 14

    def test_unblocked_accounts_inline_where(self, fig1):
        result = match(fig1, "MATCH (x:Account WHERE x.isBlocked='no')")
        assert sorted(result.ids("x")) == ["a1", "a2", "a3", "a5", "a6"]

    def test_postfilter_equivalent(self, fig1):
        inline = match(fig1, "MATCH (x:Account WHERE x.isBlocked='no')")
        postfilter = match(fig1, "MATCH (x:Account) WHERE x.isBlocked='no'")
        assert sorted(inline.ids("x")) == sorted(postfilter.ids("x"))

    def test_account_or_ip(self, fig1):
        result = match(fig1, "MATCH (x:Account|IP)")
        assert len(result) == 8

    def test_unlabeled_wildcard(self, fig1):
        assert len(match(fig1, "MATCH (:!%)")) == 0

    def test_all_directed_edges(self, fig1):
        result = match(fig1, "MATCH -[e]->")
        assert len(result) == 16  # all directed edges

    def test_all_undirected_edges(self, fig1):
        result = match(fig1, "MATCH ~[e]~")
        # each undirected edge matched twice (one per traversal), then
        # deduplicated? No: the two traversals have different paths.
        assert {row["e"].id for row in result} == {f"hp{i}" for i in range(1, 7)}

    def test_transfers_over_5m(self, fig1):
        result = match(fig1, "MATCH -[e:Transfer WHERE e.amount>5M]->")
        assert sorted({row["e"].id for row in result}) == [
            "t1", "t2", "t3", "t4", "t5", "t7", "t8",
        ]

    def test_anonymous_middle_node(self, fig1):
        result = match(fig1, "MATCH (x)-[:Transfer]->()-[:isLocatedIn]->(y)")
        assert len(result) == 8  # every transfer target has a location
        assert {row["y"].id for row in result} <= {"c1", "c2"}


class TestSection42Concatenation:
    def test_source_and_target_binding(self, fig1):
        result = match(fig1, "MATCH (x)-[e]->(y)")
        t1_row = next(row for row in result if row["e"].id == "t1")
        assert t1_row["x"].id == "a1" and t1_row["y"].id == "a3"

    def test_two_step_sample_binding(self, fig1):
        # the paper's displayed binding s=a6, e=t5, m=a3, f=t2, t=a2
        result = match(fig1, "MATCH (s)-[e]->(m)-[f]->(t)")
        dicts = result.to_dicts()
        assert {"s": "a6", "e": "t5", "m": "a3", "f": "t2", "t": "a2"} in dicts

    def test_mixed_orientation_two_step(self, fig1):
        # blocked-phone version is empty on Figure 1 (no blocked phones);
        # with 'no' the pattern pairs undirected then directed edges.
        result = match(
            fig1,
            "MATCH (p:Phone WHERE p.isBlocked='yes')~[e:hasPhone]~(a1:Account)"
            "-[t:Transfer WHERE t.amount>1M]->(a2)",
        )
        assert len(result) == 0
        result = match(
            fig1,
            "MATCH (p:Phone WHERE p.isBlocked='no')~[e:hasPhone]~(a1:Account)"
            "-[t:Transfer WHERE t.amount>1M]->(a2)",
        )
        assert len(result) == 8

    def test_triangles(self, fig1):
        # "finds triangles of accounts involved in money transfers"
        result = match(
            fig1,
            "MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)",
        )
        triples = sorted((r["s"].id, r["s1"].id, r["s2"].id) for r in result)
        assert triples == [
            ("a1", "a3", "a5"),
            ("a3", "a5", "a1"),
            ("a5", "a1", "a3"),
        ]

    def test_path_variable_bound_to_triangle(self, fig1):
        result = match(
            fig1,
            "MATCH p = (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)",
        )
        for row in result:
            path = row["p"]
            assert path.length == 3
            assert path.source_id == path.target_id

    def test_shared_phone_transfers(self, fig1):
        # the paper's exactly-two-bindings example
        result = match(
            fig1,
            "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->"
            "(d:Account)~[:hasPhone]~(p)",
        )
        bindings = sorted(
            (r["p"].id, r["s"].id, r["t"].id, r["d"].id) for r in result
        )
        assert bindings == [
            ("p1", "a5", "t8", "a1"),
            ("p2", "a3", "t2", "a2"),
        ]


class TestSection43GraphPatterns:
    def test_split_pattern_equivalence(self, fig1):
        joined = match(
            fig1,
            "MATCH (p:Phone WHERE p.isBlocked='no')~[:hasPhone]~(s:Account), "
            "(s)-[t:Transfer WHERE t.amount>1M]->()",
        )
        chained = match(
            fig1,
            "MATCH (p:Phone WHERE p.isBlocked='no')~[:hasPhone]~(s:Account)"
            "-[t:Transfer WHERE t.amount>1M]->()",
        )
        assert sorted((r["p"].id, r["s"].id, r["t"].id) for r in joined) == sorted(
            (r["p"].id, r["s"].id, r["t"].id) for r in chained
        )

    def test_three_path_pattern(self, fig1):
        result = match(
            fig1,
            "MATCH (s:Account)-[:signInWithIP]-(), "
            "(s)-[t:Transfer WHERE t.amount>1M]->(), "
            "(s)~[:hasPhone]~(p:Phone WHERE p.isBlocked='no')",
        )
        assert sorted({row["s"].id for row in result}) == ["a1", "a5"]


class TestSection44GroupVariables:
    def test_singleton_vs_group_reference(self, fig1):
        # t is referenced as singleton inside the quantifier (per edge)
        # and as a group in the final WHERE (Section 4.4's example).
        result = match(
            fig1,
            "MATCH (a:Account) [()-[t:Transfer]->() WHERE t.amount>1M]{2,5} "
            "(b:Account) WHERE SUM(t.amount)>10M",
        )
        assert len(result) > 0
        for row in result:
            amounts = [e["amount"] for e in row["t"]]
            assert all(v > 1_000_000 for v in amounts)
            assert sum(amounts) > 10_000_000
            assert 2 <= len(amounts) <= 5

    def test_group_list_matches_path_edges(self, fig1):
        result = match(fig1, "MATCH (a:Account)-[t:Transfer]->{2,3}(b)")
        for row in result:
            assert [e.id for e in row["t"]] == list(row.paths[0].edge_ids)


class TestSection47GraphicalPredicates:
    def test_orientation_interrogation(self, fig1):
        result = match(
            fig1,
            "MATCH (s)-[e]-(d) WHERE e IS DIRECTED AND s IS SOURCE OF e "
            "AND d IS DESTINATION OF e",
        )
        assert len(result) == 16  # each directed edge, forward traversal only
        for row in result:
            assert row["e"].source == row["s"]

    def test_same_self_transfer(self, fig1):
        # SAME(x, y) on transfers: no self-loops in Figure 1
        result = match(fig1, "MATCH (x)-[e:Transfer]->(y) WHERE SAME(x, y)")
        assert len(result) == 0

    def test_all_different_excludes_triangle_endpoints(self, fig1):
        result = match(
            fig1,
            "MATCH (x)-[:Transfer]->(y)-[:Transfer]->(z) "
            "WHERE NOT ALL_DIFFERENT(x, z)",
        )
        # x == z: round trips; figure 1 has none of length 2
        assert len(result) == 0


class TestDegenerateNodePatterns:
    def test_empty_node_pattern_matches_everything(self, fig1):
        # "the simplest possible node pattern: MATCH ()" — no variable to
        # reference, but one solution per node.
        result = match(fig1, "MATCH ()")
        assert len(result) == 14
        assert result.variables == []

    def test_empty_pattern_as_placeholder(self, fig1):
        # "a placeholder for any node ... to link it with other elements"
        linked = match(fig1, "MATCH (x:Phone)~[:hasPhone]~()")
        assert len(linked) == 6
