"""Section 3 + Figures 3-4: basic patterns and the four-language query."""

import pytest

from repro.baselines import endpoint_pairs
from repro.gpml import match
from repro.pgq import graph_table


class TestFigure3Patterns:
    def test_pattern_a_blocked_accounts(self, fig1):
        # Fig 3(a): nodes with label Account and isBlocked = yes.
        result = match(fig1, "MATCH (x:Account WHERE x.isBlocked='yes')")
        assert result.ids("x") == ["a4"]

    def test_pattern_b_dated_transfer(self, fig1):
        # Fig 3(b) as printed (blocked -> non-blocked on 3/1/2020): the
        # only 3/1 transfer is t3 = a2(no) -> a4(yes), so no match...
        as_printed = match(
            fig1,
            "MATCH (x:Account WHERE x.isBlocked='yes')"
            "-[e:Transfer WHERE e.date='3/1/2020']->"
            "(y:Account WHERE y.isBlocked='no')",
        )
        assert len(as_printed) == 0
        # ... while the reversed blocking finds t3 (see EXPERIMENTS.md).
        reversed_roles = match(
            fig1,
            "MATCH (x:Account WHERE x.isBlocked='no')"
            "-[e:Transfer WHERE e.date='3/1/2020']->"
            "(y:Account WHERE y.isBlocked='yes')",
        )
        assert reversed_roles.to_dicts() == [{"x": "a2", "e": "t3", "y": "a4"}]

    def test_pattern_c_transfer_path(self, fig1):
        # Fig 3(c): Transfer+ from non-blocked to blocked (TRAIL-bounded).
        result = match(
            fig1,
            "MATCH TRAIL (x:Account WHERE x.isBlocked='no')"
            "-[:Transfer]->+(y:Account WHERE y.isBlocked='yes')",
        )
        assert len(result) > 0
        assert {row["y"].id for row in result} == {"a4"}


class TestFigure4Query:
    GPML = (
        "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
        "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
        "(y:Account WHERE y.isBlocked='yes'), "
        "TRAIL (x)-[:Transfer]->+(y)"
    )

    def test_gpml_owner_pairs(self, fig1):
        result = match(fig1, self.GPML)
        pairs = sorted({(row["x"]["owner"], row["y"]["owner"]) for row in result})
        assert pairs == [("Aretha", "Jay"), ("Dave", "Jay")]

    def test_cypher_form_via_gql(self, fig1):
        # the Cypher rendering returns a.owner, b.owner
        from repro.gql import GqlSession

        session = GqlSession(fig1)
        result = session.execute(
            "MATCH (a:Account WHERE a.isBlocked='no')-[:isLocatedIn]->"
            "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
            "(b:Account WHERE b.isBlocked='yes'), "
            "TRAIL p = (a)-[:Transfer]->+(b) "
            "RETURN DISTINCT a.owner AS A, b.owner AS B ORDER BY A"
        )
        assert [(r["A"], r["B"]) for r in result] == [("Aretha", "Jay"), ("Dave", "Jay")]

    def test_pgql_form_via_graph_table(self, fig1):
        # the PGQL rendering with LISTAGG / COUNT over the group variable
        table = graph_table(
            fig1,
            "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
            "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
            "(y:Account WHERE y.isBlocked='yes'), "
            "TRAIL (x)-[e:Transfer]->+(y) "
            "COLUMNS (x.owner AS A, y.owner AS B, COUNT(e) AS hops, "
            "LISTAGG(e, ', ') AS edge_list)",
        )
        pairs = sorted(set((d["A"], d["B"]) for d in table.to_dicts()))
        assert pairs == [("Aretha", "Jay"), ("Dave", "Jay")]
        direct = next(d for d in table.to_dicts() if d["A"] == "Aretha")
        assert direct["hops"] == 1 and direct["edge_list"] == "t3"

    def test_pgql_trail_idiom_equivalence(self, fig1):
        # PGQL §3: WHERE COUNT(e) = COUNT(DISTINCT e) simulates TRAIL.
        # With a length bound both phrasings enumerate the same paths.
        idiom = match(
            fig1,
            "MATCH (x WHERE x.owner='Dave')-[e:Transfer]->{1,8}"
            "(y WHERE y.owner='Aretha') "
            "WHERE COUNT(e) = COUNT(DISTINCT e)",
        )
        trail = match(
            fig1,
            "MATCH TRAIL (x WHERE x.owner='Dave')-[e:Transfer]->{1,8}"
            "(y WHERE y.owner='Aretha')",
        )
        assert sorted(str(p) for p in idiom.paths()) == sorted(
            str(p) for p in trail.paths()
        )

    def test_sparql_endpoint_semantics(self, fig1):
        # SPARQL §3: the simplified query returns endpoint pairs only.
        pairs = endpoint_pairs(
            fig1,
            "MATCH (x WHERE x.isBlocked='no')-[:Transfer]->+"
            "(y WHERE y.isBlocked='yes')",
        )
        located = endpoint_pairs(fig1, "MATCH (x:Account)-[:isLocatedIn]->(c WHERE c.name='Ankh-Morpork')")
        in_city = {x for x, _ in located}
        filtered = sorted((x, y) for x, y in pairs if x in in_city and y in in_city)
        assert filtered == [("a2", "a4"), ("a6", "a4")]

    def test_gsql_form_distinct_pairs(self, fig1):
        # GSQL §3: SELECT ... GROUP BY A, B — distinct owner pairs.
        table = graph_table(
            fig1,
            self.GPML + " COLUMNS (x.owner AS A, y.owner AS B)",
        ).project(["A", "B"]).distinct().order_by(["A"])
        assert [tuple(r.values()) for r in table.to_dicts()] == [
            ("Aretha", "Jay"),
            ("Dave", "Jay"),
        ]
