"""Section 6: the worked execution-model example, stage by stage."""

import pytest

from repro.gpml import ast, match
from repro.gpml.analysis import analyze
from repro.gpml.normalize import normalize_graph_pattern
from repro.gpml.parser import parse_match
from repro.gpml.reference import ReferenceConfig, reference_match

RUNNING_QUERY = (
    "MATCH TRAIL (a WHERE a.owner='Jay')"
    " [-[b:Transfer WHERE b.amount>5M]->]+"
    " (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]"
)


class TestNormalizationStage:
    def test_quantified_edge_gets_anonymous_nodes(self):
        normalized = normalize_graph_pattern(parse_match(RUNNING_QUERY))
        quant = next(
            p
            for p in normalized.paths[0].pattern.walk()
            if isinstance(p, ast.Quantified)
        )
        assert (quant.lower, quant.upper) == (1, None)  # + became {1,}
        leaves = [
            p
            for p in quant.inner.walk()
            if isinstance(p, (ast.NodePattern, ast.EdgePattern))
        ]
        assert [type(l).__name__ for l in leaves] == [
            "NodePattern", "EdgePattern", "NodePattern",
        ]
        assert leaves[0].anonymous and leaves[2].anonymous
        assert leaves[1].var == "b"

    def test_variable_classification(self):
        normalized = normalize_graph_pattern(parse_match(RUNNING_QUERY))
        analysis = analyze(normalized)
        vars_ = analysis.paths[0].vars
        assert vars_["b"].group          # under the + quantifier
        assert not vars_["a"].group      # singleton, joined on reuse
        assert not vars_["c"].conditional  # bound in both union branches


class TestFinalResult:
    def test_two_reduced_bindings(self, fig1):
        result = match(fig1, RUNNING_QUERY)
        assert len(result) == 2
        paths = sorted(str(p) for p in result.paths())
        assert paths == [
            "path(a4,t4,a6,t5,a3,t2,a2,t3,a4,li4,c2)",
            "path(a4,t4,a6,t5,a3,t7,a5,t8,a1,t1,a3,t2,a2,t3,a4,li4,c2)",
        ]

    def test_bindings_content(self, fig1):
        result = match(fig1, RUNNING_QUERY)
        short = next(row for row in result if row.paths[0].length == 5)
        assert short["a"].id == "a4"
        assert short["c"].id == "c2"
        assert [e.id for e in short["b"]] == ["t4", "t5", "t2", "t3"]
        long = next(row for row in result if row.paths[0].length == 8)
        assert [e.id for e in long["b"]] == [
            "t4", "t5", "t7", "t8", "t1", "t2", "t3",
        ]

    def test_t6_and_sip_edges_never_appear(self, fig1):
        # Section 6.4: (a6,t6,a5) fails the WHERE; (ip1,sip1,a1) has the
        # wrong label — neither may appear in any path binding.
        result = match(fig1, RUNNING_QUERY)
        for path in result.paths():
            assert "t6" not in path.edge_ids
            assert "sip1" not in path.edge_ids

    def test_trail_excludes_n8(self, fig1):
        # "π(8, City) has no match ... would use the loop twice"
        result = match(fig1, RUNNING_QUERY)
        assert sorted(p.length - 1 for p in result.paths()) == [4, 7]

    def test_equivalent_label_disjunction_form(self, fig1):
        # Section 6.5: the union form equals the City|Country label form.
        union = match(fig1, RUNNING_QUERY)
        disjunction = match(
            fig1,
            "MATCH TRAIL (a WHERE a.owner='Jay')"
            " [-[b:Transfer WHERE b.amount>5M]->]+"
            " (a)-[:isLocatedIn]->(c:City|Country)",
        )
        assert sorted(str(p) for p in union.paths()) == sorted(
            str(p) for p in disjunction.paths()
        )


class TestSelectorsAndAlternation:
    def test_all_shortest_variant(self, fig1):
        # replacing TRAIL with ALL SHORTEST keeps one shortest binding
        result = match(
            fig1,
            RUNNING_QUERY.replace("MATCH TRAIL", "MATCH ALL SHORTEST"),
        )
        assert [str(p) for p in result.paths()] == [
            "path(a4,t4,a6,t5,a3,t2,a2,t3,a4,li4,c2)"
        ]

    def test_multiset_alternation_keeps_four(self, fig1):
        result = match(fig1, RUNNING_QUERY.replace("|", "|+|"))
        assert len(result) == 4


class TestReferencePipelineAgreement:
    def test_reference_engine_reproduces_section6(self, fig1):
        production = match(fig1, RUNNING_QUERY)
        reference = reference_match(fig1, RUNNING_QUERY, ReferenceConfig(max_unroll=8))
        assert sorted(str(p) for p in production.paths()) == sorted(
            str(p) for p in reference.paths()
        )

    def test_reference_multiset_agreement(self, fig1):
        query = RUNNING_QUERY.replace("|", "|+|")
        production = match(fig1, query)
        reference = reference_match(fig1, query, ReferenceConfig(max_unroll=8))
        assert len(production) == len(reference) == 4
