"""Section 5: termination, restrictors, selectors, pre/postfilters."""

import pytest

from repro.errors import NonTerminationError
from repro.gpml import match, prepare


class TestTerminationRules:
    def test_unbounded_star_rejected_without_cover(self):
        # the Section 5 opening example must be rejected statically
        with pytest.raises(NonTerminationError):
            prepare(
                "MATCH p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
                "(b WHERE b.owner='Aretha')"
            )

    def test_restrictor_makes_it_legal(self, fig1):
        result = match(
            fig1,
            "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha')",
        )
        assert len(result) == 3

    def test_selector_makes_it_legal(self, fig1):
        result = match(
            fig1,
            "MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha')",
        )
        assert [str(p) for p in result.paths()] == ["path(a6,t5,a3,t2,a2)"]


class TestSection51Restrictors:
    def test_trail_returns_exactly_three(self, fig1):
        result = match(
            fig1,
            "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha')",
        )
        assert sorted(str(p) for p in result.paths()) == [
            "path(a6,t5,a3,t2,a2)",
            "path(a6,t5,a3,t7,a5,t8,a1,t1,a3,t2,a2)",
            "path(a6,t6,a5,t8,a1,t1,a3,t2,a2)",
        ]

    def test_double_cycle_walk_is_not_returned(self, fig1):
        # path(a6,t5,a3,t2,a2,t3,a4,t4,a6,t5,a3,t2,a2) is not a trail
        result = match(
            fig1,
            "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha')",
        )
        assert all(p.is_trail() for p in result.paths())
        assert all(p.length <= 10 for p in result.paths())

    def test_all_shortest_trail_combination(self, fig1):
        # "selectors are always applied after restrictors"
        result = match(
            fig1,
            "MATCH ALL SHORTEST TRAIL p = (a WHERE a.owner='Dave')"
            "-[t:Transfer]->*(b WHERE b.owner='Aretha')"
            "-[r:Transfer]->*(c WHERE c.owner='Mike')",
        )
        assert sorted(str(p) for p in result.paths()) == [
            "path(a6,t5,a3,t2,a2,t3,a4,t4,a6,t6,a5,t8,a1,t1,a3)",
            "path(a6,t6,a5,t8,a1,t1,a3,t2,a2,t3,a4,t4,a6,t5,a3)",
        ]

    def test_shorter_non_trail_excluded(self, fig1):
        # the length-10 walk reusing t5 is shorter but not a trail
        result = match(
            fig1,
            "MATCH ALL SHORTEST TRAIL p = (a WHERE a.owner='Dave')"
            "-[t:Transfer]->*(b WHERE b.owner='Aretha')"
            "-[r:Transfer]->*(c WHERE c.owner='Mike')",
        )
        assert all(p.length == 7 for p in result.paths())

    def test_selector_never_empties_nonempty_query(self, fig1):
        # "adding a selector to Q ... will always have at least one match"
        base = match(
            fig1,
            "MATCH TRAIL p = (x WHERE x.owner='Charles')->{1,10}"
            "(q WHERE q.owner='Mike')->{1,10}(r WHERE r.owner='Scott')",
        )
        with_selector = match(
            fig1,
            "MATCH ALL SHORTEST p = (x WHERE x.owner='Charles')->{1,10}"
            "(q WHERE q.owner='Mike')->{1,10}(r WHERE r.owner='Scott')",
        )
        # the restrictor empties the result (t8 must repeat), the
        # selector keeps the repeated-t8 walk (Section 5.1; the paper
        # names the owner 'Natalia' — a5 is Charles, see EXPERIMENTS.md)
        assert len(base) == 0
        assert [str(p) for p in with_selector.paths()] == [
            "path(a5,t8,a1,t1,a3,t7,a5,t8,a1)"
        ]


class TestSection52PreAndPostfilters:
    def test_prefilter_blocked_intermediary(self, fig1):
        # NOTE: the paper states the only solution is the length-6 path
        # via t5/t7; with t6 = a6->a5 (fixed by Sections 5.1 and 6) the
        # length-5 path via t6 also satisfies the pattern and is strictly
        # shorter, so ALL SHORTEST returns it.  See EXPERIMENTS.md.
        result = match(
            fig1,
            "MATCH ALL SHORTEST (p:Account WHERE p.owner='Scott')->+"
            "(q:Account WHERE q.isBlocked='yes')->+"
            "(r:Account WHERE r.owner='Charles')",
        )
        assert [str(p) for p in result.paths()] == [
            "path(a1,t1,a3,t2,a2,t3,a4,t4,a6,t6,a5)"
        ]
        assert all(row["q"].id == "a4" for row in result)

    def test_postfilter_variant_is_empty(self, fig1):
        # the shortest Scott->Charles path goes through a3 (not blocked),
        # and the postfilter then drops it: no results (Section 5.2).
        result = match(
            fig1,
            "MATCH ALL SHORTEST (p:Account WHERE p.owner='Scott')->+"
            "(q:Account)->+(r:Account WHERE r.owner='Charles') "
            "WHERE q.isBlocked='yes'",
        )
        assert len(result) == 0

    def test_shortest_scott_to_charles_without_filter(self, fig1):
        result = match(
            fig1,
            "MATCH ALL SHORTEST (p:Account WHERE p.owner='Scott')->+"
            "(q:Account)->+(r:Account WHERE r.owner='Charles')",
        )
        assert [str(p) for p in result.paths()] == ["path(a1,t1,a3,t7,a5)"]
        assert result.rows[0]["q"].id == "a3"


class TestSection53UnboundedAggregates:
    def test_prefilter_aggregate_rejected(self):
        with pytest.raises(NonTerminationError):
            prepare(
                "MATCH ALL SHORTEST [ (x)-[e]->*(y) "
                "WHERE COUNT(e.*)/(COUNT(e.*)+1)>1 ]"
            )

    def test_postfilter_variant_runs_and_is_empty(self, fig1):
        # "any results produced by the selector will be filtered out"
        result = match(
            fig1,
            "MATCH ALL SHORTEST (x)-[e]->*(y) "
            "WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1",
        )
        assert len(result) == 0

    def test_trail_prefilter_variant_runs_and_is_empty(self, fig1):
        result = match(
            fig1,
            "MATCH ALL SHORTEST [ TRAIL (x)-[e]->*(y) "
            "WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1 ]",
        )
        assert len(result) == 0

    def test_static_bound_variant_runs_and_is_empty(self, fig1):
        result = match(
            fig1,
            "MATCH ALL SHORTEST [ (x)-[e]->{0,10}(y) "
            "WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1 ]",
        )
        assert len(result) == 0
