"""Section 2 + Figures 1-2: the property graph model and banking graph."""

import pytest

from repro.datasets import FIGURE1_OWNERS
from repro.graph import Path
from repro.pgq import tabular_representation


class TestFigure1Inventory:
    def test_node_census(self, fig1):
        assert fig1.num_nodes == 14
        assert {n.id for n in fig1.nodes_with_label("Account")} == set(FIGURE1_OWNERS)
        assert {n.id for n in fig1.nodes_with_label("Phone")} == {"p1", "p2", "p3", "p4"}
        assert {n.id for n in fig1.nodes_with_label("IP")} == {"ip1", "ip2"}
        assert {n.id for n in fig1.nodes_with_label("Country")} == {"c1", "c2"}
        assert {n.id for n in fig1.nodes_with_label("City")} == {"c2"}

    def test_owners_and_blocking(self, fig1):
        for node_id, owner in FIGURE1_OWNERS.items():
            assert fig1.node(node_id)["owner"] == owner
        blocked = [n.id for n in fig1.nodes_with_label("Account") if n["isBlocked"] == "yes"]
        assert blocked == ["a4"]  # Jay

    def test_place_names(self, fig1):
        assert fig1.node("c1")["name"] == "Zembla"
        assert fig1.node("c2")["name"] == "Ankh-Morpork"

    def test_transfer_edges(self, fig1):
        expected = {
            "t1": ("a1", "a3", "1/1/2020", 8_000_000),
            "t2": ("a3", "a2", "2/1/2020", 10_000_000),
            "t3": ("a2", "a4", "3/1/2020", 10_000_000),
            "t4": ("a4", "a6", "4/1/2020", 10_000_000),
            "t5": ("a6", "a3", "6/1/2020", 10_000_000),
            "t6": ("a6", "a5", "7/1/2020", 4_000_000),
            "t7": ("a3", "a5", "8/1/2020", 6_000_000),
            "t8": ("a5", "a1", "9/1/2020", 9_000_000),
        }
        for edge_id, (src, dst, date, amount) in expected.items():
            edge = fig1.edge(edge_id)
            assert edge.is_directed
            assert edge.source.id == src and edge.target.id == dst
            assert edge["date"] == date and edge["amount"] == amount

    def test_located_in_edges(self, fig1):
        located = {
            "li1": ("a1", "c1"), "li2": ("a2", "c2"), "li3": ("a3", "c1"),
            "li4": ("a4", "c2"), "li5": ("a5", "c1"), "li6": ("a6", "c2"),
        }
        for edge_id, (src, dst) in located.items():
            edge = fig1.edge(edge_id)
            assert edge.has_label("isLocatedIn")
            assert (edge.source.id, edge.target.id) == (src, dst)

    def test_phone_attachments_undirected(self, fig1):
        phones = {
            "hp1": ("a1", "p1"), "hp2": ("a2", "p2"), "hp3": ("a3", "p2"),
            "hp4": ("a4", "p3"), "hp5": ("a5", "p1"), "hp6": ("a6", "p4"),
        }
        for edge_id, (account, phone) in phones.items():
            edge = fig1.edge(edge_id)
            assert not edge.is_directed
            assert edge.connects(account, phone)

    def test_sign_in_edges(self, fig1):
        sip1 = fig1.edge("sip1")
        sip2 = fig1.edge("sip2")
        assert (sip1.source.id, sip1.target.id) == ("a1", "ip1")
        assert (sip2.source.id, sip2.target.id) == ("a5", "ip2")


class TestSection2Statements:
    def test_paper_example_walk(self, fig1):
        # "path(c1,li1,a1,t1,a3,hp3,p2)": li1 in reverse, t1 forward,
        # hp3 undirected — valid as a walk.
        p = Path.from_element_ids(fig1, ("c1", "li1", "a1", "t1", "a3", "hp3", "p2"))
        assert p.length == 3

    def test_c2_has_both_labels(self, fig1):
        # "It does appear together with Country (on node c2)"
        assert fig1.node("c2").labels == frozenset({"City", "Country"})


class TestFigure2TabularRepresentation:
    def test_relation_per_label_combination(self, fig1):
        tables = tabular_representation(fig1)
        # "every label ... is a relation name ... except City, which does
        # not appear by itself"; c2 lands in CityCountry.
        assert "CityCountry" in tables
        assert "City" not in tables
        assert set(tables) == {
            "Account", "Country", "CityCountry", "Phone", "IP",
            "Transfer", "isLocatedIn", "hasPhone", "signInWithIP",
        }

    def test_account_rows_match_figure2(self, fig1):
        account = tabular_representation(fig1)["Account"]
        rows = {d["ID"]: (d["owner"], d["isBlocked"]) for d in account.to_dicts()}
        assert rows["a1"] == ("Scott", "no")
        assert rows["a2"] == ("Aretha", "no")
        assert rows["a3"] == ("Mike", "no")
        assert rows["a4"] == ("Jay", "yes")

    def test_transfer_rows_match_figure2(self, fig1):
        transfer = tabular_representation(fig1)["Transfer"]
        rows = {d["ID"]: (d["SRC"], d["DST"], d["date"], d["amount"])
                for d in transfer.to_dicts()}
        assert rows["t1"] == ("a1", "a3", "1/1/2020", 8_000_000)
        assert rows["t2"] == ("a3", "a2", "2/1/2020", 10_000_000)
        assert rows["t3"] == ("a2", "a4", "3/1/2020", 10_000_000)

    def test_sign_in_rows_match_figure2(self, fig1):
        sip = tabular_representation(fig1)["signInWithIP"]
        rows = {d["ID"]: (d["SRC"], d["DST"]) for d in sip.to_dicts()}
        assert rows == {"sip1": ("a1", "ip1"), "sip2": ("a5", "ip2")}

    def test_country_tables_match_figure2(self, fig1):
        tables = tabular_representation(fig1)
        assert tables["Country"].to_dicts() == [{"ID": "c1", "name": "Zembla"}]
        assert tables["CityCountry"].to_dicts() == [
            {"ID": "c2", "name": "Ankh-Morpork"}
        ]

    def test_undirected_edge_table_endpoints(self, fig1):
        has_phone = tabular_representation(fig1)["hasPhone"]
        assert list(has_phone.columns) == ["ID", "END1", "END2"]
        assert len(has_phone) == 6
