"""Execute every fenced ``python`` code block in the documentation.

Docs rot when their examples drift from the code.  This test extracts
the fenced code blocks from ``README.md`` and every ``docs/*.md`` file
and runs them, so a snippet that stops working fails CI.

Conventions:

* blocks tagged exactly ```` ```python ```` are executed; any other tag
  (```` ```bash ````, ```` ```text ````, ```` ```python no-run ````) is
  skipped,
* blocks within one file run *sequentially in a shared namespace*, so a
  later block may build on names an earlier block defined — write docs
  top-to-bottom runnable,
* ``src/`` is on ``sys.path`` (the same bootstrap the examples use), so
  snippets import ``repro`` exactly as a user following the README would.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
_SRC = str(REPO_ROOT / "src")
if _SRC not in sys.path:  # pragma: no cover - depends on invocation
    sys.path.insert(0, _SRC)

#: fenced code blocks: ```<info>\n<body>```
_FENCE = re.compile(r"^```([^\n`]*)\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL)


def doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """(starting line number, source) of every runnable python block."""
    text = path.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE.finditer(text):
        info = match.group(1).strip()
        if info != "python":
            continue
        line = text.count("\n", 0, match.start(2)) + 1
        blocks.append((line, match.group(2)))
    return blocks


def test_docs_directory_exists():
    assert (REPO_ROOT / "docs").is_dir(), "docs/ language reference is missing"


@pytest.mark.parametrize(
    "path", doc_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_doc_snippets_execute(path):
    assert path.exists(), f"{path} is referenced by the docs test but missing"
    blocks = python_blocks(path)
    assert blocks, f"{path.name} has no runnable ```python blocks"
    namespace: dict = {"__name__": f"docsnippet_{path.stem}"}
    for line, source in blocks:
        code = compile(source, f"{path.name}:{line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - the point of the test
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(
                f"{path.name} snippet at line {line} raised "
                f"{type(exc).__name__}: {exc}"
            )
