"""Unit tests for the value domain and three-valued logic."""

import pytest

from repro.values import (
    FALSE,
    NULL,
    TRUE,
    UNKNOWN,
    TruthValue,
    compare,
    format_amount,
    is_null,
    parse_number,
    truth_of,
)


class TestNull:
    def test_null_is_singleton(self):
        from repro.values import _NullType

        assert _NullType() is NULL

    def test_is_null_accepts_none(self):
        assert is_null(None)
        assert is_null(NULL)
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(False)

    def test_null_is_falsy(self):
        assert not NULL

    def test_null_repr(self):
        assert repr(NULL) == "NULL"


class TestTruthValue:
    def test_bool_collapses_to_definitely_true(self):
        assert bool(TRUE)
        assert not bool(FALSE)
        assert not bool(UNKNOWN)

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            (TRUE, TRUE, TRUE),
            (TRUE, FALSE, FALSE),
            (TRUE, UNKNOWN, UNKNOWN),
            (FALSE, UNKNOWN, FALSE),
            (UNKNOWN, UNKNOWN, UNKNOWN),
        ],
    )
    def test_and(self, a, b, expected):
        assert a.and_(b) is expected
        assert b.and_(a) is expected

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            (TRUE, TRUE, TRUE),
            (TRUE, FALSE, TRUE),
            (TRUE, UNKNOWN, TRUE),
            (FALSE, UNKNOWN, UNKNOWN),
            (FALSE, FALSE, FALSE),
            (UNKNOWN, UNKNOWN, UNKNOWN),
        ],
    )
    def test_or(self, a, b, expected):
        assert a.or_(b) is expected
        assert b.or_(a) is expected

    def test_not(self):
        assert TRUE.not_() is FALSE
        assert FALSE.not_() is TRUE
        assert UNKNOWN.not_() is UNKNOWN

    def test_truth_of(self):
        assert truth_of(True) is TRUE
        assert truth_of(False) is FALSE
        assert truth_of(NULL) is UNKNOWN
        assert truth_of(None) is UNKNOWN
        assert truth_of(TRUE) is TRUE

    def test_truth_of_rejects_non_boolean(self):
        with pytest.raises(TypeError):
            truth_of(42)


class TestCompare:
    def test_null_comparisons_are_unknown(self):
        assert compare("=", NULL, 1) is UNKNOWN
        assert compare("<", 1, NULL) is UNKNOWN
        assert compare("<>", NULL, NULL) is UNKNOWN

    def test_numeric(self):
        assert compare("=", 1, 1) is TRUE
        assert compare("<", 1, 2) is TRUE
        assert compare("<=", 2, 2) is TRUE
        assert compare(">", 3, 2) is TRUE
        assert compare(">=", 2, 3) is FALSE
        assert compare("<>", 1, 2) is TRUE

    def test_int_float_comparable(self):
        assert compare("=", 1, 1.0) is TRUE
        assert compare("<", 1, 1.5) is TRUE

    def test_strings(self):
        assert compare("=", "no", "no") is TRUE
        assert compare("<", "a", "b") is TRUE

    def test_incomparable_types(self):
        assert compare("=", "a", 1) is FALSE
        assert compare("<>", "a", 1) is TRUE
        assert compare("<", "a", 1) is UNKNOWN

    def test_bool_not_comparable_to_number(self):
        assert compare("=", True, 1) is FALSE

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            compare("~=", 1, 1)


class TestNumericLiterals:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("5M", 5_000_000),
            ("8m", 8_000_000),
            ("10K", 10_000),
            ("2B", 2_000_000_000),
            ("1.5K", 1500.0),
            ("42", 42),
            ("3.25", 3.25),
            ("1e3", 1000.0),
        ],
    )
    def test_parse_number(self, text, expected):
        value = parse_number(text)
        assert value == expected
        assert isinstance(value, type(expected))

    def test_parse_number_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_number("")
        with pytest.raises(ValueError):
            parse_number("x5")

    def test_format_amount(self):
        assert format_amount(8_000_000) == "8M"
        assert format_amount(10_000) == "10K"
        assert format_amount(2_000_000_000) == "2B"
        assert format_amount(123) == "123"
        assert format_amount(1.5) == "1.5"
