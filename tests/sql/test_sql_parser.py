"""Parser tests for the SQL subset (statement shapes and error paths)."""

import pytest

from repro.errors import SqlSyntaxError
from repro.gpml.expr import Comparison, Literal, PropertyRef, VarRef
from repro.sql import parse_sql
from repro.sql.ast import (
    CreateGraphStatement,
    ExplainStatement,
    GraphTableRef,
    SelectStatement,
    SqlAggregate,
    TableRef,
)


class TestSelectCore:
    def test_minimal_select(self):
        statement = parse_sql("SELECT x FROM t")
        assert isinstance(statement, SelectStatement)
        core = statement.cores[0]
        assert core.items[0].expr == VarRef("x")
        assert isinstance(core.sources[0].item, TableRef)
        assert core.sources[0].item.name == "t"

    def test_keywords_are_case_insensitive(self):
        statement = parse_sql("select x from t where x > 1 order by x limit 2")
        assert statement.limit == 2
        assert statement.order_by[0].expr == VarRef("x")

    def test_star(self):
        core = parse_sql("SELECT * FROM t").cores[0]
        assert core.items[0].expr is None

    def test_aliases_with_and_without_as(self):
        core = parse_sql("SELECT a.x AS first, a.y second FROM t AS a").cores[0]
        assert core.items[0].alias == "first"
        assert core.items[1].alias == "second"
        assert core.sources[0].item.alias == "a"

    def test_bare_table_alias(self):
        core = parse_sql("SELECT x FROM accounts a").cores[0]
        assert core.sources[0].item.name == "accounts"
        assert core.sources[0].item.alias == "a"

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT x FROM t").cores[0].distinct

    def test_no_from(self):
        core = parse_sql("SELECT 1 + 1 AS two").cores[0]
        assert core.sources == []

    def test_where_group_having(self):
        core = parse_sql(
            "SELECT x, COUNT(*) FROM t WHERE y > 0 GROUP BY x HAVING COUNT(*) > 1"
        ).cores[0]
        assert isinstance(core.where, Comparison)
        assert core.group_by == [VarRef("x")]
        assert isinstance(core.having, Comparison)

    def test_joins(self):
        core = parse_sql(
            "SELECT * FROM a JOIN b ON a.id = b.id INNER JOIN c ON c.id = b.id, d"
        ).cores[0]
        kinds = [source.kind for source in core.sources]
        assert kinds == ["from", "join", "join", "cross"]
        assert core.sources[1].on == Comparison(
            "=", PropertyRef("a", "id"), PropertyRef("b", "id")
        )
        assert core.sources[3].on is None


class TestSqlAggregates:
    def test_count_star(self):
        core = parse_sql("SELECT COUNT(*) FROM t").cores[0]
        assert core.items[0].expr == SqlAggregate(func="COUNT", arg=None)

    def test_sum_expression(self):
        core = parse_sql("SELECT SUM(a.x + 1) FROM t a").cores[0]
        aggregate = core.items[0].expr
        assert isinstance(aggregate, SqlAggregate)
        assert aggregate.func == "SUM"

    def test_count_distinct(self):
        core = parse_sql("SELECT COUNT(DISTINCT x) FROM t").cores[0]
        assert core.items[0].expr.distinct

    def test_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError, match="only COUNT"):
            parse_sql("SELECT SUM(*) FROM t")


class TestOrderLimit:
    def test_order_directions(self):
        statement = parse_sql("SELECT x FROM t ORDER BY x DESC, y ASC, z")
        directions = [item.descending for item in statement.order_by]
        assert directions == [True, False, False]

    def test_limit_offset(self):
        statement = parse_sql("SELECT x FROM t LIMIT 5 OFFSET 2")
        assert (statement.limit, statement.offset) == (5, 2)

    def test_offset_before_limit(self):
        statement = parse_sql("SELECT x FROM t OFFSET 2 ROWS LIMIT 5")
        assert (statement.limit, statement.offset) == (5, 2)

    def test_fetch_first(self):
        statement = parse_sql("SELECT x FROM t FETCH FIRST 3 ROWS ONLY")
        assert statement.limit == 3

    def test_fetch_first_defaults_to_one(self):
        assert parse_sql("SELECT x FROM t FETCH FIRST ROW ONLY").limit == 1

    def test_duplicate_limit_rejected(self):
        with pytest.raises(SqlSyntaxError, match="duplicate LIMIT"):
            parse_sql("SELECT x FROM t LIMIT 1 FETCH FIRST 2 ROWS ONLY")

    def test_duplicate_offset_rejected(self):
        with pytest.raises(SqlSyntaxError, match="duplicate OFFSET"):
            parse_sql("SELECT x FROM t OFFSET 1 OFFSET 2")


class TestUnion:
    def test_union_chain(self):
        statement = parse_sql(
            "SELECT x FROM a UNION SELECT x FROM b UNION ALL SELECT x FROM c"
        )
        assert statement.set_ops == ["UNION", "UNION ALL"]
        assert len(statement.cores) == 3

    def test_trailing_order_applies_to_union(self):
        statement = parse_sql("SELECT x FROM a UNION SELECT x FROM b ORDER BY x")
        assert len(statement.order_by) == 1


class TestGraphTable:
    QUERY = (
        "SELECT g.src FROM GRAPH_TABLE(bank "
        "MATCH (a:Account)-[t:Transfer]->(b) "
        "COLUMNS (a.owner AS src, SUM(t.amount) AS total)) AS g"
    )

    def test_graph_table_ref(self):
        core = parse_sql(self.QUERY).cores[0]
        ref = core.sources[0].item
        assert isinstance(ref, GraphTableRef)
        assert ref.graph_name == "bank"
        assert ref.alias == "g"
        assert ref.statement.column_names == ["src", "total"]
        assert ref.statement.pattern_text.strip().startswith("MATCH")
        assert ref.pattern is not None  # parsed AST kept for pushdown

    def test_columns_keep_gpml_aggregates(self):
        """Inside COLUMNS, SUM is GPML's horizontal aggregate over group
        variables — not the SQL vertical SqlAggregate."""
        from repro.gpml.expr import Aggregate

        ref = parse_sql(self.QUERY).cores[0].sources[0].item
        assert isinstance(ref.statement.columns[1][1], Aggregate)

    def test_missing_columns(self):
        with pytest.raises(SqlSyntaxError, match="COLUMNS"):
            parse_sql("SELECT x FROM GRAPH_TABLE(bank MATCH (a)) AS g")

    def test_missing_match(self):
        with pytest.raises(SqlSyntaxError, match="MATCH"):
            parse_sql("SELECT x FROM GRAPH_TABLE(bank COLUMNS (a.x)) AS g")

    def test_pattern_error_names_the_graph(self):
        with pytest.raises(SqlSyntaxError, match="GRAPH_TABLE over 'bank'"):
            parse_sql("SELECT x FROM GRAPH_TABLE(bank MATCH (a]->(b) COLUMNS (a.x)) AS g")


class TestStatements:
    def test_explain(self):
        statement = parse_sql("EXPLAIN SELECT x FROM t")
        assert isinstance(statement, ExplainStatement)
        assert isinstance(statement.inner, SelectStatement)

    def test_create_property_graph_passthrough(self):
        text = "CREATE PROPERTY GRAPH g VERTEX TABLES (t)"
        statement = parse_sql(text)
        assert isinstance(statement, CreateGraphStatement)
        assert statement.text == text

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT x FROM t nonsense extra ,")

    def test_expression_error_becomes_sql_error(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT x + FROM t")

    def test_string_literals(self):
        core = parse_sql("SELECT x FROM t WHERE name = 'O''Brien'").cores[0]
        assert core.where == Comparison("=", VarRef("name"), Literal("O'Brien"))
