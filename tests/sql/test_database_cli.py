"""Database session ergonomics and the ``repro sql`` CLI subcommand."""

import pytest

from repro.cli import main
from repro.errors import SqlError
from repro.pgq import Catalog, Table
from repro.sql import Database


class TestDatabase:
    def test_wraps_existing_catalog(self, fig1):
        catalog = Catalog()
        catalog.register_table("T", Table(["x"], [(1,)], name="T"))
        catalog.register_graph("g", fig1)
        database = Database(catalog)
        assert list(database.execute("SELECT x FROM T").rows) == [(1,)]
        assert database.graph("g") is fig1

    def test_unknown_lookups_list_known_names(self, fig1):
        database = Database()
        database.register_graph("fig1", fig1)
        with pytest.raises(SqlError, match="known graphs: fig1"):
            database.graph("other")
        with pytest.raises(SqlError, match="known tables: <none>"):
            database.table("missing")

    def test_execute_iter_rejects_non_select(self):
        database = Database()
        with pytest.raises(SqlError, match="only streams SELECT"):
            next(database.execute_iter("CREATE PROPERTY GRAPH g VERTEX TABLES (t)"))

    def test_explain_accepts_explain_prefix(self, fig1):
        database = Database()
        database.register_graph("fig1", fig1)
        query = (
            "SELECT g.o FROM GRAPH_TABLE(fig1 MATCH (a:Account) "
            "COLUMNS (a.owner AS o)) AS g"
        )
        assert database.explain(query) == database.explain(f"EXPLAIN {query}")

    def test_top_level_export(self):
        import repro

        assert repro.Database is Database


class TestCliSql:
    QUERY = (
        "SELECT g.src FROM GRAPH_TABLE(figure1 "
        "MATCH (a:Account)-[t:Transfer]->(b) COLUMNS (a.owner AS src)) AS g "
        "ORDER BY g.src LIMIT 2"
    )

    def test_runs_query(self, capsys):
        assert main(["sql", self.QUERY]) == 0
        out = capsys.readouterr().out
        assert "src" in out and "Aretha" in out

    def test_tabular_tables_preloaded(self, capsys):
        assert main([
            "sql",
            "SELECT owner FROM Account WHERE isBlocked = 'no' ORDER BY owner LIMIT 1",
        ]) == 0
        assert "Aretha" in capsys.readouterr().out

    def test_join_graph_table_against_base_table(self, capsys):
        query = (
            "SELECT g.src, acc.isBlocked FROM GRAPH_TABLE(figure1 "
            "MATCH (a:Account)-[t:Transfer]->(b) COLUMNS (a.owner AS src)) AS g "
            "JOIN Account AS acc ON acc.owner = g.src ORDER BY g.src LIMIT 1"
        )
        assert main(["sql", query]) == 0
        assert "Aretha" in capsys.readouterr().out

    def test_explain_flag(self, capsys):
        assert main(["sql", "--explain", self.QUERY]) == 0
        out = capsys.readouterr().out
        assert "graph_table scan figure1" in out
        assert "[streaming]" in out

    def test_stats_flag(self, capsys):
        assert main(["sql", "--stats", self.QUERY]) == 0
        assert "matcher steps" in capsys.readouterr().out

    def test_double_quotes_normalized(self, capsys):
        query = self.QUERY.replace(
            "ORDER BY g.src LIMIT 2", 'WHERE g.src = "Dave" LIMIT 1'
        )
        assert main(["sql", query]) == 0
        assert "Dave" in capsys.readouterr().out

    def test_single_quoted_literals_keep_double_quotes(self, capsys):
        assert main(["sql", "SELECT 'say \"hi\"' AS s"]) == 0
        assert 'say "hi"' in capsys.readouterr().out

    def test_sql_error_reported(self, capsys):
        assert main(["sql", "SELECT x FROM nowhere"]) == 1
        assert "unknown table" in capsys.readouterr().err

    def test_syntax_error_reported(self, capsys):
        assert main(["sql", "SELECT FROM"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_graph_file(self, capsys):
        assert main(["sql", "--graph", "/no/such/file.json", self.QUERY]) == 1
        assert "error:" in capsys.readouterr().err

    def test_gpml_cli_still_works(self, capsys):
        assert main(["MATCH (x:Account WHERE x.owner='Dave')"]) == 0
        assert "(1 row(s))" in capsys.readouterr().out
