"""GRAPH_TABLE as a table operator: pushdown, budgets, EXPLAIN, joins."""

import pytest

from repro.gpml import PipelineStats
from repro.pgq import Table, tabular_representation
from repro.sql import Database
from repro.values import NULL


@pytest.fixture()
def db(fig1):
    database = Database()
    database.register_graph("fig1", fig1)
    for name, table in tabular_representation(fig1).items():
        database.register_table(name, table)
    return database


TRANSFERS = (
    "GRAPH_TABLE(fig1 MATCH (a:Account)-[t:Transfer]->(b:Account) "
    "COLUMNS (a.owner AS src, b.owner AS dst, t.amount AS amount)) AS gt"
)


class TestBasics:
    def test_select_over_graph_table(self, db):
        table = db.execute(f"SELECT gt.src, gt.amount FROM {TRANSFERS} ORDER BY gt.amount DESC, gt.src LIMIT 2")
        assert list(table.rows) == [("Aretha", 10_000_000), ("Dave", 10_000_000)]

    def test_matches_standalone_graph_table(self, db, fig1):
        from repro.pgq import graph_table

        sql_rows = sorted(db.execute(f"SELECT * FROM {TRANSFERS}").rows)
        standalone = graph_table(
            fig1,
            "MATCH (a:Account)-[t:Transfer]->(b:Account) "
            "COLUMNS (a.owner AS src, b.owner AS dst, t.amount AS amount)",
        )
        assert sql_rows == sorted(standalone.rows)

    def test_unaliased_graph_table(self, db):
        table = db.execute(
            "SELECT src FROM GRAPH_TABLE(fig1 MATCH (a:Account)-[t:Transfer]->(b) "
            "COLUMNS (a.owner AS src)) ORDER BY src LIMIT 1"
        )
        assert list(table.rows) == [("Aretha",)]

    def test_join_graph_table_with_base_table(self, db):
        table = db.execute(
            f"SELECT gt.src, acc.isBlocked FROM {TRANSFERS} "
            "JOIN Account AS acc ON acc.owner = gt.src "
            "WHERE gt.amount >= 10M AND acc.isBlocked = 'no' "
            "ORDER BY gt.src"
        )
        assert list(table.rows) == [
            ("Aretha", "no"), ("Dave", "no"), ("Mike", "no"),
        ]

    def test_two_graph_tables_join(self, db):
        table = db.execute(
            "SELECT hop1.src, hop2.dst FROM "
            "GRAPH_TABLE(fig1 MATCH (a:Account)-[t:Transfer]->(b:Account) "
            "COLUMNS (a.owner AS src, b.owner AS dst)) AS hop1 "
            "JOIN GRAPH_TABLE(fig1 MATCH (c:Account)-[u:Transfer]->(d:Account) "
            "COLUMNS (c.owner AS src, d.owner AS dst)) AS hop2 "
            "ON hop2.src = hop1.dst "
            "WHERE hop1.src = 'Scott' ORDER BY hop2.dst"
        )
        assert list(table.rows) == [("Scott", "Aretha"), ("Scott", "Charles")]

    def test_group_variable_aggregates_in_columns(self, db):
        table = db.execute(
            "SELECT route.hops, route.moved FROM "
            "GRAPH_TABLE(fig1 MATCH TRAIL (a WHERE a.owner='Dave')-[e:Transfer]->* "
            "(b WHERE b.owner='Aretha') "
            "COLUMNS (COUNT(e) AS hops, SUM(e.amount) AS moved)) AS route "
            "ORDER BY route.hops"
        )
        assert list(table.rows) == [(2, 20_000_000), (4, 31_000_000), (5, 43_000_000)]

    def test_ddl_then_graph_table(self):
        database = Database()
        database.register_table(
            "P", Table(["id", "name"], [(1, "x"), (2, "y")], name="P")
        )
        database.register_table(
            "E", Table(["id", "s", "d"], [(10, 1, 2)], name="E")
        )
        graph = database.execute(
            "CREATE PROPERTY GRAPH g VERTEX TABLES (P KEY (id) LABEL P PROPERTIES (name)) "
            "EDGE TABLES (E KEY (id) SOURCE KEY (s) REFERENCES P "
            "DESTINATION KEY (d) REFERENCES P LABEL E)"
        )
        assert graph.num_nodes == 2
        table = database.execute(
            "SELECT g.a, g.b FROM GRAPH_TABLE(g MATCH (x:P)-[e:E]->(y:P) "
            "COLUMNS (x.name AS a, y.name AS b)) AS g"
        )
        assert list(table.rows) == [("x", "y")]


class TestPredicatePushdown:
    def test_pushed_and_unpushed_agree(self, db):
        query = (
            f"SELECT gt.dst FROM {TRANSFERS} "
            "WHERE gt.src = 'Mike' AND gt.amount > 5M ORDER BY gt.dst"
        )
        pushed = db.execute(query)
        unpushed = db.execute(query, pushdown=False)
        assert pushed.rows == unpushed.rows == [("Aretha",), ("Charles",)]

    def test_pushdown_reduces_matcher_steps(self, db):
        query = f"SELECT gt.dst FROM {TRANSFERS} WHERE gt.src = 'Dave'"
        pushed, unpushed = PipelineStats(), PipelineStats()
        db.execute(query, stats=pushed)
        db.execute(query, stats=unpushed, pushdown=False)
        # the pushed predicate narrows the anchor candidates, so the
        # search expands fewer edges and delivers fewer raw matches
        assert pushed.matches < unpushed.matches
        assert pushed.steps < unpushed.steps

    def test_pushed_predicate_shown_in_explain(self, db):
        plan = db.explain(f"SELECT gt.dst FROM {TRANSFERS} WHERE gt.src = 'Dave'")
        assert "pushed into MATCH: a.owner = 'Dave'" in plan
        assert "[streaming]" in plan  # embedded GPML pipeline section

    def test_multi_table_conjunct_not_pushed(self, db):
        plan = db.explain(
            f"SELECT gt.dst FROM {TRANSFERS} "
            "JOIN Account AS acc ON acc.owner = gt.src "
            "WHERE gt.amount > acc.ID"
        )
        assert "pushed into MATCH" not in plan

    def test_aggregate_columns_not_pushed(self, db):
        # `hops` is defined by COUNT(e), a horizontal aggregate — the SQL
        # value space differs from any scalar GPML rewrite, so the
        # predicate must stay a relational filter
        query = (
            "SELECT r.hops FROM GRAPH_TABLE(fig1 "
            "MATCH TRAIL (a WHERE a.owner='Dave')-[e:Transfer]->*(b) "
            "COLUMNS (COUNT(e) AS hops)) AS r WHERE r.hops > 2"
        )
        plan = db.explain(query)
        assert "pushed into MATCH" not in plan
        assert "filter" in plan
        assert db.execute(query).rows == db.execute(query, pushdown=False).rows

    def test_element_projection_not_pushed(self, db):
        # COLUMNS (t) projects the edge as its id; `= 't1'` compares ids in
        # SQL but elements in GPML — unsound, so no pushdown
        query = (
            "SELECT g.edge FROM GRAPH_TABLE(fig1 MATCH (a)-[t:Transfer]->(b) "
            "COLUMNS (t AS edge)) AS g WHERE g.edge = 't1'"
        )
        plan = db.explain(query)
        assert "pushed into MATCH" not in plan
        assert list(db.execute(query).rows) == [("t1",)]

    def test_keep_blocks_pushdown(self, db):
        # KEEP selects after the final WHERE; strengthening the WHERE
        # would change which rows KEEP sees
        query = (
            "SELECT g.src, g.dst FROM GRAPH_TABLE(fig1 "
            "MATCH TRAIL (a:Account)-[t:Transfer]->+(b:Account) KEEP ANY SHORTEST "
            "COLUMNS (a.owner AS src, b.owner AS dst)) AS g "
            "WHERE g.src = 'Dave'"
        )
        plan = db.explain(query)
        assert "pushed into MATCH" not in plan
        assert db.execute(query).rows == db.execute(query, pushdown=False).rows

    def test_pushdown_with_selector_agrees(self, db):
        query = (
            "SELECT g.src, g.dst, g.hops FROM GRAPH_TABLE(fig1 "
            "MATCH ANY SHORTEST (a:Account)-[t:Transfer]->+(b:Account) "
            "COLUMNS (a.owner AS src, b.owner AS dst, COUNT(t) AS hops)) AS g "
            "WHERE g.src = 'Dave' ORDER BY g.dst, g.hops"
        )
        assert db.execute(query).rows == db.execute(query, pushdown=False).rows

    def test_arithmetic_projection_pushes(self, db):
        query = (
            "SELECT g.m FROM GRAPH_TABLE(fig1 MATCH (a)-[t:Transfer]->(b) "
            "COLUMNS (t.amount / 1000000 AS m)) AS g WHERE g.m >= 9"
        )
        plan = db.explain(query)
        assert "pushed into MATCH: (t.amount / 1000000) >= 9" in plan
        assert sorted(db.execute(query).rows) == sorted(
            db.execute(query, pushdown=False).rows
        )


class TestRowBudgetPushdown:
    def test_limit_stops_the_search(self, db):
        full, limited = PipelineStats(), PipelineStats()
        query = f"SELECT gt.src FROM {TRANSFERS}"
        db.execute(query, stats=full)
        db.execute(query + " LIMIT 1", stats=limited)
        assert limited.steps < full.steps
        assert limited.rows == 1

    def test_limit_prefix_of_full_result(self, db):
        query = f"SELECT gt.src, gt.dst FROM {TRANSFERS}"
        full = db.execute(query)
        limited = db.execute(query + " LIMIT 3")
        assert list(limited.rows) == list(full.rows)[:3]

    def test_offset_keeps_budget_sound(self, db):
        query = f"SELECT gt.src, gt.dst FROM {TRANSFERS}"
        full = db.execute(query)
        page = db.execute(query + " LIMIT 2 OFFSET 2")
        assert list(page.rows) == list(full.rows)[2:4]

    def test_fetch_first_pushes_budget(self, db):
        stats = PipelineStats()
        db.execute(
            f"SELECT gt.src FROM {TRANSFERS} FETCH FIRST 1 ROW ONLY", stats=stats
        )
        assert stats.rows == 1

    def test_budget_through_filter(self, db):
        # rows dropped by the SQL filter must not count against the budget
        query = f"SELECT gt.src FROM {TRANSFERS} WHERE gt.amount > 9M"
        full = db.execute(query, pushdown=False)
        limited = db.execute(query + " LIMIT 2")
        assert list(limited.rows) == list(full.rows)[:2]

    def test_blocking_sort_consumes_before_budget(self, db):
        query = f"SELECT gt.src, gt.amount FROM {TRANSFERS} ORDER BY gt.amount DESC, gt.src"
        full = db.execute(query)
        limited = db.execute(query + " LIMIT 1")
        assert list(limited.rows) == list(full.rows)[:1]

    def test_aggregate_sees_all_rows_despite_limit(self, db):
        table = db.execute(f"SELECT COUNT(*) AS n FROM {TRANSFERS} LIMIT 1")
        assert list(table.rows) == [(8,)]

    def test_explain_select_returns_plan_table(self, db):
        table = db.execute(f"EXPLAIN SELECT gt.src FROM {TRANSFERS} LIMIT 1")
        assert table.columns == ("plan",)
        text = "\n".join(line for (line,) in table.rows)
        assert "graph_table scan fig1 AS gt" in text
        assert "row budget" in text
        assert "[streaming] pattern #1 search" in text

    def test_union_of_graph_tables_with_limit(self, db):
        query = (
            "SELECT g.src FROM GRAPH_TABLE(fig1 MATCH (a:Account)-[t:Transfer]->(b) "
            "COLUMNS (a.owner AS src)) AS g "
            "UNION SELECT h.dst FROM GRAPH_TABLE(fig1 MATCH (c)-[u:Transfer]->(d:Account) "
            "COLUMNS (d.owner AS dst)) AS h"
        )
        full = db.execute(query)
        limited = db.execute(query + " LIMIT 2")
        assert list(limited.rows) == list(full.rows)[:2]


class TestNullSemantics:
    def test_unbound_conditional_projects_null(self, db):
        table = db.execute(
            "SELECT g.who, g.num FROM GRAPH_TABLE(fig1 "
            "MATCH (a:Account WHERE a.owner='Scott') (~[h:hasPhone]~(p:Phone))? "
            "COLUMNS (a.owner AS who, p.number AS num)) AS g"
        )
        assert ("Scott", NULL) in list(table.rows)
