"""Relational-executor tests: operators, NULL semantics, error paths."""

import pytest

from repro.errors import SqlError
from repro.pgq import Table
from repro.sql import Database
from repro.values import NULL, is_null


@pytest.fixture()
def db():
    database = Database()
    database.register_table(
        "accounts",
        Table(
            ["id", "owner", "balance", "city"],
            [
                (1, "Scott", 100, "Ankh"),
                (2, "Aretha", 250, "Ankh"),
                (3, "Mike", NULL, "Quirm"),
                (4, "Jay", 250, NULL),
            ],
            name="accounts",
        ),
    )
    database.register_table(
        "cities",
        Table(
            ["name", "country"],
            [("Ankh", "Zembla"), ("Quirm", "Zembla"), ("Genua", "Elsewhere")],
            name="cities",
        ),
    )
    database.register_table("empty", Table(["id", "x"], [], name="empty"))
    return database


def rows(table):
    return list(table.rows)


class TestProjectionAndFilter:
    def test_select_columns(self, db):
        table = db.execute("SELECT owner, balance FROM accounts")
        assert table.columns == ("owner", "balance")
        assert len(table) == 4

    def test_select_star(self, db):
        table = db.execute("SELECT * FROM accounts")
        assert table.columns == ("id", "owner", "balance", "city")

    def test_expressions_and_aliases(self, db):
        table = db.execute("SELECT balance * 2 AS double FROM accounts WHERE id = 1")
        assert rows(table) == [(200,)]

    def test_default_output_names(self, db):
        table = db.execute("SELECT a.owner, balance + 1 FROM accounts a LIMIT 1")
        assert table.columns == ("owner", "col2")

    def test_where_three_valued_logic(self, db):
        # Mike's balance is NULL -> comparison UNKNOWN -> row dropped
        table = db.execute("SELECT owner FROM accounts WHERE balance >= 100")
        assert rows(table) == [("Scott",), ("Aretha",), ("Jay",)]

    def test_is_null_predicate(self, db):
        table = db.execute("SELECT owner FROM accounts WHERE balance IS NULL")
        assert rows(table) == [("Mike",)]
        table = db.execute(
            "SELECT owner FROM accounts WHERE city IS NOT NULL AND balance IS NOT NULL"
        )
        assert rows(table) == [("Scott",), ("Aretha",)]

    def test_no_from_single_row(self, db):
        assert rows(db.execute("SELECT 1 + 2 AS three, 'x' AS tag")) == [(3, "x")]

    def test_distinct(self, db):
        table = db.execute("SELECT DISTINCT country FROM cities")
        assert rows(table) == [("Zembla",), ("Elsewhere",)]


class TestJoins:
    def test_inner_join(self, db):
        table = db.execute(
            "SELECT a.owner, c.country FROM accounts a "
            "JOIN cities c ON c.name = a.city ORDER BY a.owner"
        )
        assert rows(table) == [
            ("Aretha", "Zembla"), ("Mike", "Zembla"), ("Scott", "Zembla"),
        ]

    def test_null_keys_never_join(self, db):
        # Jay's city is NULL: no match even against NULL on the other side
        table = db.execute(
            "SELECT a.owner FROM accounts a JOIN cities c ON a.city = c.name"
        )
        assert ("Jay",) not in rows(table)

    def test_join_with_empty_table(self, db):
        table = db.execute(
            "SELECT a.owner FROM accounts a JOIN empty e ON e.id = a.id"
        )
        assert rows(table) == []
        table = db.execute(
            "SELECT a.owner FROM empty e JOIN accounts a ON e.id = a.id"
        )
        assert rows(table) == []

    def test_cross_join(self, db):
        table = db.execute("SELECT a.owner, c.name FROM accounts a, cities c")
        assert len(table) == 12

    def test_cross_join_with_where_as_theta(self, db):
        table = db.execute(
            "SELECT a.owner FROM accounts a, cities c "
            "WHERE a.city = c.name AND c.country = 'Zembla' ORDER BY a.owner"
        )
        assert rows(table) == [("Aretha",), ("Mike",), ("Scott",)]

    def test_non_equi_join_residual(self, db):
        table = db.execute(
            "SELECT a.owner, b.owner FROM accounts a "
            "JOIN accounts b ON a.balance > b.balance"
        )
        # colliding default names keep their qualified spelling
        assert table.columns == ("a.owner", "b.owner")
        assert rows(table) == [("Aretha", "Scott"), ("Jay", "Scott")]

    def test_join_mixed_equi_and_residual(self, db):
        table = db.execute(
            "SELECT a.owner, b.owner FROM accounts a "
            "JOIN accounts b ON a.balance = b.balance AND a.id < b.id"
        )
        assert rows(table) == [("Aretha", "Jay")]

    def test_qualified_disambiguation(self, db):
        with pytest.raises(SqlError, match="ambiguous column 'owner'"):
            db.execute("SELECT owner FROM accounts a JOIN accounts b ON a.id = b.id")

    def test_star_qualifies_duplicates(self, db):
        table = db.execute(
            "SELECT * FROM accounts a JOIN accounts b ON b.id = a.id LIMIT 1"
        )
        assert table.columns == (
            "a.id", "a.owner", "a.balance", "a.city",
            "b.id", "b.owner", "b.balance", "b.city",
        )
        # non-colliding names stay bare
        table = db.execute(
            "SELECT * FROM accounts a JOIN cities c ON c.name = a.city LIMIT 1"
        )
        assert table.columns == ("id", "owner", "balance", "city", "name", "country")

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(SqlError, match="duplicate table name/alias"):
            db.execute("SELECT 1 FROM accounts a, cities a")


class TestAggregation:
    def test_group_by(self, db):
        table = db.execute(
            "SELECT city, COUNT(*) AS n FROM accounts GROUP BY city ORDER BY n DESC"
        )
        assert rows(table) == [("Ankh", 2), ("Quirm", 1), (NULL, 1)]

    def test_aggregates_skip_nulls(self, db):
        table = db.execute(
            "SELECT COUNT(*) AS all_rows, COUNT(balance) AS with_balance, "
            "SUM(balance) AS total, MIN(balance) AS low, MAX(balance) AS high, "
            "AVG(balance) AS mean FROM accounts"
        )
        assert rows(table) == [(4, 3, 600, 100, 250, 200.0)]

    def test_aggregate_over_empty_input(self, db):
        table = db.execute("SELECT COUNT(*) AS n, SUM(x) AS s FROM empty")
        [(n, s)] = rows(table)
        assert n == 0 and is_null(s)

    def test_count_distinct(self, db):
        table = db.execute("SELECT COUNT(DISTINCT balance) AS n FROM accounts")
        assert rows(table) == [(2,)]

    def test_having(self, db):
        table = db.execute(
            "SELECT city, COUNT(*) AS n FROM accounts "
            "WHERE city IS NOT NULL GROUP BY city HAVING COUNT(*) > 1"
        )
        assert rows(table) == [("Ankh", 2)]

    def test_group_key_addressable_unqualified(self, db):
        table = db.execute(
            "SELECT city FROM accounts a GROUP BY a.city ORDER BY city"
        )
        assert rows(table) == [("Ankh",), ("Quirm",), (NULL,)]

    def test_group_by_expression(self, db):
        table = db.execute(
            "SELECT balance / 50 AS bucket, COUNT(*) AS n FROM accounts "
            "WHERE balance IS NOT NULL GROUP BY balance / 50 ORDER BY bucket"
        )
        assert rows(table) == [(2.0, 1), (5.0, 2)]

    def test_listagg(self, db):
        table = db.execute(
            "SELECT LISTAGG(owner, '; ') AS names FROM accounts WHERE balance = 250"
        )
        assert rows(table) == [("Aretha; Jay",)]

    def test_order_by_aggregate(self, db):
        table = db.execute(
            "SELECT city FROM accounts WHERE city IS NOT NULL "
            "GROUP BY city ORDER BY COUNT(*) DESC"
        )
        assert rows(table) == [("Ankh",), ("Quirm",)]


class TestAggregateMisuse:
    def test_aggregate_in_where(self, db):
        with pytest.raises(SqlError, match="not allowed in WHERE"):
            db.execute("SELECT owner FROM accounts WHERE COUNT(*) > 1")

    def test_non_grouped_column(self, db):
        with pytest.raises(SqlError, match="must appear in GROUP BY"):
            db.execute("SELECT owner, COUNT(*) FROM accounts GROUP BY city")

    def test_star_with_group_by(self, db):
        with pytest.raises(SqlError, match="SELECT \\*"):
            db.execute("SELECT * FROM accounts GROUP BY city")

    def test_nested_aggregate(self, db):
        with pytest.raises(SqlError, match="nested aggregate"):
            db.execute("SELECT SUM(COUNT(*)) FROM accounts")

    def test_aggregate_in_join_condition(self, db):
        with pytest.raises(SqlError, match="not allowed in ON"):
            db.execute(
                "SELECT 1 FROM accounts a JOIN cities c ON COUNT(*) = a.id"
            )


class TestOrderLimitUnion:
    def test_order_by_nulls_last(self, db):
        table = db.execute("SELECT owner, balance FROM accounts ORDER BY balance, owner")
        assert rows(table) == [
            ("Scott", 100), ("Aretha", 250), ("Jay", 250), ("Mike", NULL),
        ]

    def test_order_by_alias(self, db):
        table = db.execute(
            "SELECT owner, balance * 2 AS twice FROM accounts "
            "WHERE balance IS NOT NULL ORDER BY twice DESC, owner LIMIT 2"
        )
        assert rows(table) == [("Aretha", 500), ("Jay", 500)]

    def test_order_by_mixed_int_float(self, db):
        db.register_table(
            "nums", Table(["x"], [(2,), (2.5,), (1,), (1.5,)], name="nums")
        )
        table = db.execute("SELECT x FROM nums ORDER BY x")
        assert rows(table) == [(1,), (1.5,), (2,), (2.5,)]

    def test_order_by_ordinal(self, db):
        table = db.execute("SELECT owner, balance FROM accounts ORDER BY 2 DESC, 1")
        assert rows(table) == [
            ("Mike", NULL), ("Aretha", 250), ("Jay", 250), ("Scott", 100),
        ]

    def test_order_by_ordinal_on_union(self, db):
        table = db.execute(
            "SELECT owner AS name FROM accounts UNION SELECT name FROM cities "
            "ORDER BY 1 LIMIT 2"
        )
        assert rows(table) == [("Ankh",), ("Aretha",)]

    def test_order_by_ordinal_out_of_range(self, db):
        with pytest.raises(SqlError, match="position 3 is not in the select list"):
            db.execute("SELECT owner, balance FROM accounts ORDER BY 3")

    def test_order_by_non_integer_constant_rejected(self, db):
        with pytest.raises(SqlError, match="non-integer constant"):
            db.execute("SELECT owner FROM accounts ORDER BY 'x'")

    def test_order_by_non_output_column(self, db):
        table = db.execute("SELECT owner FROM accounts ORDER BY id DESC")
        assert rows(table) == [("Jay",), ("Mike",), ("Aretha",), ("Scott",)]

    def test_order_by_distinct_requires_output_column(self, db):
        with pytest.raises(SqlError, match="DISTINCT"):
            db.execute("SELECT DISTINCT owner FROM accounts ORDER BY id")

    def test_limit_offset(self, db):
        table = db.execute("SELECT owner FROM accounts ORDER BY id LIMIT 2 OFFSET 1")
        assert rows(table) == [("Aretha",), ("Mike",)]

    def test_limit_zero(self, db):
        assert rows(db.execute("SELECT owner FROM accounts LIMIT 0")) == []

    def test_fetch_first(self, db):
        table = db.execute("SELECT owner FROM accounts ORDER BY id FETCH FIRST 1 ROW ONLY")
        assert rows(table) == [("Scott",)]

    def test_union_distinct_and_all(self, db):
        union = db.execute(
            "SELECT country FROM cities UNION SELECT country FROM cities"
        )
        assert rows(union) == [("Zembla",), ("Elsewhere",)]
        union_all = db.execute(
            "SELECT country FROM cities UNION ALL SELECT country FROM cities"
        )
        assert len(union_all) == 6

    def test_union_order_limit(self, db):
        table = db.execute(
            "SELECT owner AS name FROM accounts UNION SELECT name FROM cities "
            "ORDER BY name LIMIT 3"
        )
        assert rows(table) == [("Ankh",), ("Aretha",), ("Genua",)]

    def test_union_arity_mismatch(self, db):
        with pytest.raises(SqlError, match="arity"):
            db.execute("SELECT owner, id FROM accounts UNION SELECT name FROM cities")


class TestErrorPaths:
    def test_unknown_table(self, db):
        with pytest.raises(SqlError, match="unknown table 'nope'"):
            db.execute("SELECT x FROM nope")

    def test_unknown_column(self, db):
        with pytest.raises(SqlError, match="unknown column 'shoe_size'"):
            db.execute("SELECT shoe_size FROM accounts")

    def test_unknown_qualified_column(self, db):
        with pytest.raises(SqlError, match="unknown column a.shoe_size"):
            db.execute("SELECT a.shoe_size FROM accounts a")

    def test_unknown_table_alias(self, db):
        with pytest.raises(SqlError, match="unknown table alias 'b'"):
            db.execute("SELECT b.owner FROM accounts a")

    def test_duplicate_output_alias(self, db):
        with pytest.raises(SqlError, match="duplicate output column 'x'"):
            db.execute("SELECT id AS x, owner AS x FROM accounts")

    def test_graph_predicate_rejected_in_sql(self, db):
        with pytest.raises(SqlError, match="graph pattern predicate"):
            db.execute("SELECT owner FROM accounts WHERE SAME(a, b)")

    def test_execute_iter_streams_dicts(self, db):
        records = db.execute_iter("SELECT owner FROM accounts ORDER BY id LIMIT 2")
        assert next(records) == {"owner": "Scott"}
        assert next(records) == {"owner": "Aretha"}
        assert next(records, None) is None
