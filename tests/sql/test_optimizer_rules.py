"""Per-rule unit tests for the cross-model rewrite pass.

Each rule gets: a firing case (EXPLAIN mode + rewrite trace event +
result identity against the rules-off oracle), its refusal conditions,
and its runtime guard rails (seeded fallback, semi-join abort, spool
truncation under LIMIT).  The differential sweep over random inputs
lives in ``tests/property/test_cross_model_equivalence.py``.
"""

import pytest

from repro.cli import main
from repro.gpml import PipelineStats
from repro.obs import Telemetry
from repro.pgq import tabular_representation
from repro.sql import (
    ALL_RULES,
    Database,
    SEEDED_JOIN,
    SEMI_JOIN,
    SHARED_SCAN,
    SqlConfig,
)
from repro.sql.config import _optimizer_default


@pytest.fixture()
def db(fig1):
    database = Database()
    database.register_graph("fig1", fig1)
    for name, table in tabular_representation(fig1).items():
        database.register_table(name, table)
    return database


TRANSFERS_GT = (
    "GRAPH_TABLE(fig1 MATCH (a:Account)-[t:Transfer]->(b:Account) "
    "COLUMNS (a AS src_el, a.owner AS src, b.owner AS dst))"
)
OFF = SqlConfig(optimizer_rules=frozenset())


def only(rule, **kwargs):
    return SqlConfig(optimizer_rules=frozenset({rule}), **kwargs)


def rewrite_events(stats):
    return [
        event
        for span in stats.trace.walk()
        for event in span.events
        if event["event"] == "plan_rewrite"
    ]


def bag(table):
    return sorted(map(repr, table.rows))


class TestSeededJoin:
    ELEMENT_QUERY = (
        f"SELECT acc.owner, gt.dst FROM Account AS acc JOIN {TRANSFERS_GT} AS gt "
        "ON gt.src_el = acc.ID"
    )
    PROPERTY_QUERY = (
        f"SELECT acc.owner, gt.dst FROM Account AS acc JOIN {TRANSFERS_GT} AS gt "
        "ON gt.src = acc.owner"
    )

    def test_element_probe_rewrites_and_agrees(self, db):
        plan = db.explain(self.ELEMENT_QUERY, sql_config=only(SEEDED_JOIN))
        assert "seeded graph_table scan fig1" in plan
        assert "mode: seeded join" in plan
        assert "anchors a (left end)" in plan
        on = db.execute(self.ELEMENT_QUERY, sql_config=only(SEEDED_JOIN))
        off = db.execute(self.ELEMENT_QUERY, sql_config=OFF)
        assert bag(on) == bag(off)

    def test_property_probe_rewrites_and_agrees(self, db):
        plan = db.explain(self.PROPERTY_QUERY, sql_config=only(SEEDED_JOIN))
        assert "seeded graph_table scan fig1" in plan
        on = db.execute(self.PROPERTY_QUERY, sql_config=only(SEEDED_JOIN))
        off = db.execute(self.PROPERTY_QUERY, sql_config=OFF)
        assert bag(on) == bag(off)

    def test_rewrite_event_on_trace(self, db):
        stats = PipelineStats.traced(query=self.ELEMENT_QUERY, engine="sql")
        db.execute(self.ELEMENT_QUERY, stats=stats, sql_config=only(SEEDED_JOIN))
        events = rewrite_events(stats)
        assert events and events[0]["rule"] == SEEDED_JOIN
        assert events[0]["anchor"] == "a"

    def test_seed_memo_deduplicates_probe_rows(self, db):
        # Transfer SRC endpoints repeat, so identical seeds replay from
        # the memo instead of re-running the anchored search.
        query = (
            f"SELECT tr.amount, gt.dst FROM Transfer AS tr JOIN {TRANSFERS_GT} AS gt "
            "ON gt.src_el = tr.SRC"
        )
        stats = PipelineStats.traced(query=query, engine="sql")
        out = db.explain_analyze(query, stats=stats, sql_config=only(SEEDED_JOIN))
        assert "seed_memo_hit" in out
        counts = {}
        for span in stats.trace.walk():
            for key in ("seed_memo_hit", "seed_memo_miss"):
                counts[key] = counts.get(key, 0) + span.counts.get(key, 0)
        assert counts["seed_memo_hit"] >= 1
        assert counts["seed_memo_miss"] >= 1

    def test_interior_key_not_seedable(self, db):
        # t is the edge between the endpoints — not a pinned end, so the
        # rule must decline and leave the hash join in place.
        query = (
            "SELECT tr.amount FROM Transfer AS tr JOIN GRAPH_TABLE(fig1 "
            "MATCH (a:Account)-[t:Transfer]->(b:Account) COLUMNS (t AS edge)) "
            "AS gt ON gt.edge = tr.ID"
        )
        plan = db.explain(query, sql_config=only(SEEDED_JOIN))
        assert "seeded graph_table scan" not in plan
        assert "hash join" in plan

    def test_probe_misses_yield_no_rows(self, db):
        # Transfer ids are never node ids: every probe resolves to zero
        # seeds and the join is empty, same as the oracle.
        query = (
            f"SELECT tr.ID FROM Transfer AS tr JOIN {TRANSFERS_GT} AS gt "
            "ON gt.src_el = tr.ID"
        )
        on = db.execute(query, sql_config=only(SEEDED_JOIN))
        off = db.execute(query, sql_config=OFF)
        assert bag(on) == bag(off) == []

    def test_pushed_predicate_reaches_seeded_scan(self, db):
        query = f"{self.ELEMENT_QUERY} WHERE gt.dst = 'Aretha'"
        plan = db.explain(query, sql_config=only(SEEDED_JOIN))
        assert "seeded graph_table scan fig1" in plan
        assert "pushed into MATCH: b.owner = 'Aretha'" in plan
        on = db.execute(query, sql_config=only(SEEDED_JOIN))
        off = db.execute(query, sql_config=OFF)
        assert bag(on) == bag(off)


class TestSharedScan:
    TWO_SCANS = (
        f"SELECT g1.src, g2.dst FROM {TRANSFERS_GT} AS g1 "
        f"JOIN {TRANSFERS_GT} AS g2 ON g1.dst = g2.src"
    )

    def test_identical_scans_share_one_spool(self, db):
        plan = db.explain(self.TWO_SCANS, sql_config=only(SHARED_SCAN))
        assert plan.count("shared graph_table spool") == 2
        assert "enumerates once" in plan
        assert "reads the spool" in plan
        on = db.execute(self.TWO_SCANS, sql_config=only(SHARED_SCAN))
        off = db.execute(self.TWO_SCANS, sql_config=OFF)
        assert bag(on) == bag(off)

    def test_enumerates_the_pattern_once(self, db):
        shared, naive = (
            PipelineStats.traced(query=self.TWO_SCANS, engine="sql")
            for _ in range(2)
        )
        db.execute(self.TWO_SCANS, stats=shared, sql_config=only(SHARED_SCAN))
        db.execute(self.TWO_SCANS, stats=naive, sql_config=OFF)
        assert shared.steps < naive.steps
        events = rewrite_events(shared)
        assert events and events[0]["rule"] == SHARED_SCAN
        assert events[0]["consumers"] == 2

    def test_prefix_columns_read_a_truncated_spool(self, db):
        query = (
            "SELECT g1.src_el, g2.dst FROM GRAPH_TABLE(fig1 "
            "MATCH (a:Account)-[t:Transfer]->(b:Account) "
            "COLUMNS (a AS src_el)) AS g1 "
            f"JOIN {TRANSFERS_GT} AS g2 ON g1.src_el = g2.src_el"
        )
        plan = db.explain(query, sql_config=only(SHARED_SCAN))
        assert plan.count("shared graph_table spool") == 2
        on = db.execute(query, sql_config=only(SHARED_SCAN))
        off = db.execute(query, sql_config=OFF)
        assert bag(on) == bag(off)

    def test_different_patterns_do_not_share(self, db):
        query = (
            f"SELECT g1.src, g2.who FROM {TRANSFERS_GT} AS g1 "
            "JOIN GRAPH_TABLE(fig1 MATCH (c:Account)<-[u:Transfer]-(d:Account) "
            "COLUMNS (c.owner AS who)) AS g2 ON g1.src = g2.who"
        )
        plan = db.explain(query, sql_config=only(SHARED_SCAN))
        assert "shared graph_table spool" not in plan

    def test_pushed_predicates_distinguish_fingerprints(self, db):
        # The same pattern text with different pushed WHEREs enumerates
        # different row sets — sharing would be unsound.
        query = (
            f"SELECT g1.src, g2.src FROM {TRANSFERS_GT} AS g1 "
            f"JOIN {TRANSFERS_GT} AS g2 ON g1.dst = g2.src "
            "WHERE g1.src = 'Dave' AND g2.dst = 'Aretha'"
        )
        plan = db.explain(query, sql_config=only(SHARED_SCAN))
        assert "shared graph_table spool" not in plan
        on = db.execute(query, sql_config=only(SHARED_SCAN))
        off = db.execute(query, sql_config=OFF)
        assert bag(on) == bag(off)

    def test_shared_scans_under_limit(self, db):
        query = f"{self.TWO_SCANS} LIMIT 3"
        on = db.execute(query, sql_config=only(SHARED_SCAN))
        full = db.execute(self.TWO_SCANS, sql_config=OFF)
        assert len(on.rows) == 3
        remaining = bag(full)
        for row in map(repr, on.rows):
            assert row in remaining
            remaining.remove(row)


class TestSemiJoinReduction:
    QUERY = (
        f"SELECT acc.owner, gt.dst FROM Account AS acc JOIN {TRANSFERS_GT} AS gt "
        "ON gt.src = acc.owner"
    )

    def test_reduction_marked_and_agrees(self, db):
        plan = db.explain(self.QUERY, sql_config=only(SEMI_JOIN))
        assert "semi-join reduction: distinct values of acc.owner" in plan
        on = db.execute(self.QUERY, sql_config=only(SEMI_JOIN))
        off = db.execute(self.QUERY, sql_config=OFF)
        assert bag(on) == bag(off)

    def test_reduction_applied_at_runtime(self, db):
        stats = PipelineStats.traced(query=self.QUERY, engine="sql")
        out = db.explain_analyze(self.QUERY, stats=stats, sql_config=only(SEMI_JOIN))
        # the injected IN is sargable: the search anchors on per-value
        # property-index probes instead of a label scan
        assert "property index Account(owner=" in out
        applied = [
            event
            for span in stats.trace.walk()
            for event in span.events
            if event["event"] == "semi_join_reduction"
        ]
        assert applied and applied[0]["applied"] is True
        assert applied[0]["keys"] >= 1

    def test_reduction_shrinks_enumeration(self, db):
        query = (
            f"SELECT acc.owner, gt.dst FROM Account AS acc JOIN {TRANSFERS_GT} AS gt "
            "ON gt.src = acc.owner WHERE acc.ID = 'a1'"
        )
        reduced, naive = (
            PipelineStats.traced(query=query, engine="sql") for _ in range(2)
        )
        db.execute(query, stats=reduced, sql_config=only(SEMI_JOIN))
        db.execute(query, stats=naive, sql_config=OFF)
        assert reduced.steps < naive.steps

    def test_key_cap_aborts_but_agrees(self, db):
        config = only(SEMI_JOIN, semi_join_max_keys=1)
        stats = PipelineStats.traced(query=self.QUERY, engine="sql")
        on = db.execute(self.QUERY, stats=stats, sql_config=config)
        events = [
            event
            for span in stats.trace.walk()
            for event in span.events
            if event["event"] == "semi_join_reduction"
        ]
        # the rewrite still fires at plan time; the runtime guard aborts
        assert rewrite_events(stats)
        off = db.execute(self.QUERY, sql_config=OFF)
        assert bag(on) == bag(off)

    def test_keep_blocks_reduction(self, db):
        query = (
            "SELECT acc.owner, g.dst FROM Account AS acc JOIN GRAPH_TABLE(fig1 "
            "MATCH TRAIL (a:Account)-[t:Transfer]->+(b:Account) KEEP ANY SHORTEST "
            "COLUMNS (a.owner AS src, b.owner AS dst)) AS g ON g.src = acc.owner"
        )
        plan = db.explain(query, sql_config=only(SEMI_JOIN))
        assert "semi-join reduction" not in plan
        on = db.execute(query, sql_config=only(SEMI_JOIN))
        off = db.execute(query, sql_config=OFF)
        assert bag(on) == bag(off)


class TestGatesAndTelemetry:
    QUERY = TestSeededJoin.ELEMENT_QUERY

    def test_env_gate_disables_all_rules(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_SQL_OPTIMIZER", "1")
        assert _optimizer_default() == frozenset()
        assert SqlConfig().optimizer_rules == frozenset()
        monkeypatch.delenv("REPRO_DISABLE_SQL_OPTIMIZER")
        assert _optimizer_default() == ALL_RULES

    def test_no_rewrites_without_pushdown(self, db):
        stats = PipelineStats.traced(query=self.QUERY, engine="sql")
        db.execute(self.QUERY, stats=stats, pushdown=False)
        assert rewrite_events(stats) == []

    def test_rewrites_ticked_in_telemetry(self, fig1):
        database = Database(telemetry=Telemetry())
        database.register_graph("fig1", fig1)
        for name, table in tabular_representation(fig1).items():
            database.register_table(name, table)
        database.execute(self.QUERY, sql_config=SqlConfig(optimizer_rules=ALL_RULES))
        prom = database.telemetry.render_prometheus()
        assert 'repro_sql_rewrites_total{rule="seeded_join"} 1' in prom

    def test_plan_summary_reports_rewrites(self, db):
        from repro.obs.analyze import plan_summary

        stats = PipelineStats.traced(query=self.QUERY, engine="sql")
        db.execute(
            self.QUERY, stats=stats,
            sql_config=SqlConfig(optimizer_rules=ALL_RULES),
        )
        summary = plan_summary(stats.trace)
        assert "rewrite seeded_join" in summary


class TestCliFlags:
    QUERY = (
        "SELECT acc.owner, gt.dst FROM Account AS acc JOIN GRAPH_TABLE(figure1 "
        "MATCH (a:Account)-[t:Transfer]->(b:Account) "
        "COLUMNS (a AS src_el, b.owner AS dst)) AS gt ON gt.src_el = acc.ID "
        "ORDER BY acc.owner, gt.dst"
    )

    def test_default_explain_shows_seeded_scan(self, capsys, monkeypatch):
        # the oracle-mode CI run sets the kill switch; the default this
        # test pins down is the no-env-var default
        monkeypatch.delenv("REPRO_DISABLE_SQL_OPTIMIZER", raising=False)
        assert main(["sql", "--explain", self.QUERY]) == 0
        assert "seeded graph_table scan" in capsys.readouterr().out

    def test_no_optimizer_flag(self, capsys):
        assert main(["sql", "--explain", "--no-optimizer", self.QUERY]) == 0
        out = capsys.readouterr().out
        assert "seeded graph_table scan" not in out
        assert "hash join" in out

    def test_optimizer_rules_flag(self, capsys):
        assert main(
            ["sql", "--explain", "--optimizer-rules", "semi_join", self.QUERY]
        ) == 0
        out = capsys.readouterr().out
        assert "seeded graph_table scan" not in out
        assert "semi-join reduction" not in out  # element key is not scalar
        assert "hash join" in out

    def test_unknown_rule_rejected(self, capsys):
        assert main(["sql", "--optimizer-rules", "bogus", self.QUERY]) == 2
        assert "unknown optimizer rule" in capsys.readouterr().err

    def test_results_identical_across_flags(self, capsys):
        assert main(["sql", self.QUERY]) == 0
        with_optimizer = capsys.readouterr().out
        assert main(["sql", "--no-optimizer", self.QUERY]) == 0
        assert capsys.readouterr().out == with_optimizer
