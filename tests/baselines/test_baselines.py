"""Baselines: SPARQL endpoint semantics, naive enumeration, Cypher rule."""

import pytest

from repro.baselines import (
    cypher_match,
    endpoint_pairs,
    naive_trail_match,
    naive_walk_match,
)
from repro.datasets import cycle_graph
from repro.errors import GpmlEvaluationError
from repro.gpml import match


class TestEndpointSemantics:
    def test_reachability_only(self, fig1):
        pairs = endpoint_pairs(fig1, "MATCH (x:Account)-[:Transfer]->+(y)")
        # every account reaches a3 eventually; t6/t7 feed a5, t8 feeds a1
        assert ("a1", "a4") in pairs
        assert ("a4", "a1") in pairs  # a4 -> a6 -> a5 -> a1
        assert ("a1", "c1") not in pairs

    def test_terminates_on_cycles_without_restrictor(self):
        g = cycle_graph(5)
        pairs = endpoint_pairs(g, "MATCH (x)-[:E]->+(y)")
        assert len(pairs) == 25  # every pair reachable on a cycle

    def test_zero_length_pairs(self, fig1):
        pairs = endpoint_pairs(fig1, "MATCH (x:Account)-[:Transfer]->*(y)")
        assert ("a1", "a1") in pairs

    def test_matches_engine_endpoint_projection(self, fig1):
        # endpoint pairs == projection of the path-returning semantics
        pairs = endpoint_pairs(fig1, "MATCH (x:Account)-[:Transfer]->+(y)")
        engine = match(fig1, "MATCH TRAIL (x:Account)-[:Transfer]->+(y)")
        projected = {(row["x"].id, row["y"].id) for row in engine}
        assert pairs == projected

    def test_no_paths_no_counting(self, fig1):
        # the result is a set of pairs; multiplicities are not observable
        pairs = endpoint_pairs(fig1, "MATCH (x WHERE x.owner='Dave')-[:Transfer]->+(y WHERE y.owner='Aretha')")
        assert pairs == {("a6", "a2")}

    def test_rejects_selectors_and_restrictors(self, fig1):
        with pytest.raises(GpmlEvaluationError):
            endpoint_pairs(fig1, "MATCH TRAIL (x)-[:Transfer]->+(y)")
        with pytest.raises(GpmlEvaluationError):
            endpoint_pairs(fig1, "MATCH ANY SHORTEST (x)-[:Transfer]->+(y)")

    def test_rejects_non_local_filters(self, fig1):
        with pytest.raises(GpmlEvaluationError):
            endpoint_pairs(fig1, "MATCH (x)-[e WHERE e.amount > x.limit]->(y)")


class TestNaiveEnumeration:
    @pytest.mark.parametrize(
        "query",
        [
            "MATCH (x:Account WHERE x.isBlocked='no')",
            "MATCH (x)-[e:Transfer]->(y)",
            "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->(d:Account)~[:hasPhone]~(p)",
        ],
    )
    def test_bounded_equivalence(self, fig1, query):
        naive = naive_walk_match(fig1, query, max_length=3)
        engine = match(fig1, query)
        assert sorted(map(repr, naive.to_dicts())) == sorted(map(repr, engine.to_dicts()))

    def test_trail_equivalence(self):
        # a transfers-only copy of Figure 1 keeps the blind enumeration
        # tractable (the full mixed graph has billions of trails).
        from repro.datasets import figure1_graph

        graph = figure1_graph()
        for edge_id in [f"li{i}" for i in range(1, 7)] + [
            f"hp{i}" for i in range(1, 7)
        ] + ["sip1", "sip2"]:
            graph.remove_edge(edge_id)
        query = (
            "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha')"
        )
        naive = naive_trail_match(graph, query)
        engine = match(graph, query)
        assert sorted(str(p) for p in naive.paths()) == sorted(
            str(p) for p in engine.paths()
        )

    def test_selector_applies_after_enumeration(self, fig1):
        query = (
            "MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha')"
        )
        naive = naive_walk_match(fig1, query, max_length=6)
        assert [str(p) for p in naive.paths()] == ["path(a6,t5,a3,t2,a2)"]


class TestCypherSemantics:
    def test_back_and_forth_edge_rejected(self, two_cycle):
        # GPML walks may reuse an edge across pattern parts; Cypher's
        # relationship isomorphism forbids it.
        query = "MATCH (x)-[r1]-(y)-[r2]-(z) WHERE SAME(x, z)"
        gpml = match(two_cycle, query)
        cypher = cypher_match(two_cycle, query)
        # from each start: (f,f), (g,g), (f,g), (g,f) — 8 rows total
        assert len(gpml) == 8
        # Cypher drops the same-edge round trips, keeping (f,g)/(g,f)
        assert len(cypher) == 4

    def test_cross_pattern_edge_sharing_rejected(self, fig1):
        query = "MATCH (x)-[e:Transfer]->(y), (x)-[f:Transfer]->(y)"
        gpml = match(fig1, query)
        cypher = cypher_match(fig1, query)
        assert len(gpml) == 8   # e and f may bind the same edge
        assert len(cypher) == 0  # no parallel transfers in figure 1

    def test_agrees_when_no_repetition_possible(self, fig1):
        query = "MATCH (x:Account)-[t:Transfer]->(y)"
        assert len(cypher_match(fig1, query)) == len(match(fig1, query))
