"""Figure 10 and the other as-data paper artifacts."""

from repro.meta import (
    FIGURE5_EDGE_PATTERNS,
    FIGURE6_QUANTIFIERS,
    FIGURE7_RESTRICTORS,
    FIGURE8_SELECTORS,
    FIGURE10_TIMELINE,
)


class TestFigure10:
    def test_all_milestones_present(self):
        assert len(FIGURE10_TIMELINE) == 10
        assert {e.standard for e in FIGURE10_TIMELINE} == {"SQL/PGQ", "GQL"}

    def test_published_milestones(self):
        published = [e for e in FIGURE10_TIMELINE if "Published" in e.milestone]
        assert {e.standard for e in published} == {"SQL/PGQ", "GQL"}

    def test_chronological_within_standard(self):
        for standard in ("SQL/PGQ", "GQL"):
            dates = [e.date for e in FIGURE10_TIMELINE if e.standard == standard]
            assert dates == sorted(dates)


class TestFeatureTablesMatchImplementation:
    def test_figure5_matches_orientation_enum(self):
        from repro.gpml.ast import Orientation

        assert len(FIGURE5_EDGE_PATTERNS) == 7
        described = {o.description for o in Orientation}
        assert {k.lower() for k in FIGURE5_EDGE_PATTERNS} == {
            d.lower() for d in described
        }
        for orientation in Orientation:
            _, abbrev = FIGURE5_EDGE_PATTERNS[
                orientation.description.capitalize()
                if orientation.description[0].islower()
                else orientation.description
            ]
            assert abbrev == orientation.abbreviation

    def test_figure6_quantifiers_listed(self):
        assert set(FIGURE6_QUANTIFIERS) == {"{m,n}", "{m,}", "*", "+"}

    def test_figure7_matches_restrictors(self):
        from repro.gpml.ast import RESTRICTORS

        assert set(FIGURE7_RESTRICTORS) == set(RESTRICTORS)

    def test_figure8_selectors_all_implemented(self):
        from repro.gpml.parser import parse_match

        mapping = {
            "ANY SHORTEST": "ANY SHORTEST",
            "ALL SHORTEST": "ALL SHORTEST",
            "ANY": "ANY",
            "ANY k": "ANY 2",
            "SHORTEST k": "SHORTEST 2",
            "SHORTEST k GROUP": "SHORTEST 2 GROUP",
        }
        assert set(FIGURE8_SELECTORS) == set(mapping)
        for syntax in mapping.values():
            stmt = parse_match(f"MATCH {syntax} (a)->*(b)")
            assert stmt.paths[0].selector is not None

    def test_figure8_determinism_flags(self):
        deterministic = {k for k, (_, det) in FIGURE8_SELECTORS.items() if det}
        assert deterministic == {"ALL SHORTEST", "SHORTEST k GROUP"}
