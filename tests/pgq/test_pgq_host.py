"""SQL/PGQ host: DDL, graph views, GRAPH_TABLE, tabular round trip."""

import pytest

from repro.errors import DdlError, PgqError
from repro.pgq import (
    Catalog,
    EdgeTableSpec,
    GraphSpec,
    Table,
    VertexTableSpec,
    build_graph_view,
    graph_table,
    parse_create_property_graph,
    tabular_representation,
)

BANK_DDL = """
CREATE PROPERTY GRAPH bank
VERTEX TABLES (
  Account KEY (ID) LABEL Account PROPERTIES (owner, isBlocked),
  Country KEY (ID) LABEL Country PROPERTIES (name),
  CityCountry KEY (ID) LABEL City LABEL Country PROPERTIES (name),
  Phone KEY (ID) LABEL Phone PROPERTIES (number, isBlocked),
  IP KEY (ID) LABEL IP PROPERTIES (number, isBlocked)
)
EDGE TABLES (
  Transfer KEY (ID) SOURCE KEY (SRC) REFERENCES Account
    DESTINATION KEY (DST) REFERENCES Account
    LABEL Transfer PROPERTIES (date, amount),
  isLocatedIn KEY (ID) SOURCE KEY (SRC) REFERENCES Account
    DESTINATION KEY (DST) REFERENCES Country LABEL isLocatedIn NO PROPERTIES,
  hasPhone KEY (ID) SOURCE KEY (END1) REFERENCES Account
    DESTINATION KEY (END2) REFERENCES Phone UNDIRECTED LABEL hasPhone NO PROPERTIES,
  signInWithIP KEY (ID) SOURCE KEY (SRC) REFERENCES Account
    DESTINATION KEY (DST) REFERENCES IP LABEL signInWithIP NO PROPERTIES
)
"""


@pytest.fixture()
def bank_catalog(fig1):
    catalog = Catalog()
    for name, table in tabular_representation(fig1).items():
        catalog.register_table(name, table)
    return catalog


class TestDdlParser:
    def test_parse_full_statement(self):
        spec = parse_create_property_graph(BANK_DDL)
        assert spec.name == "bank"
        assert [v.table for v in spec.vertex_tables] == [
            "Account", "Country", "CityCountry", "Phone", "IP",
        ]
        city_country = spec.vertex_tables[2]
        assert city_country.labels == ("City", "Country")
        has_phone = next(e for e in spec.edge_tables if e.table == "hasPhone")
        assert not has_phone.directed
        assert has_phone.no_properties

    def test_defaults(self):
        spec = parse_create_property_graph(
            "CREATE PROPERTY GRAPH g VERTEX TABLES (T)"
        )
        entry = spec.vertex_tables[0]
        assert entry.key is None and entry.labels == () and entry.properties is None

    def test_syntax_errors(self):
        with pytest.raises(DdlError):
            parse_create_property_graph("CREATE GRAPH g VERTEX TABLES (T)")
        with pytest.raises(DdlError):
            parse_create_property_graph(
                "CREATE PROPERTY GRAPH g VERTEX TABLES (T) trailing"
            )
        with pytest.raises(DdlError):
            parse_create_property_graph(
                "CREATE PROPERTY GRAPH g VERTEX TABLES (T) "
                "EDGE TABLES (E KEY (ID) SOURCE KEY (a) REFERENCES T)"
            )


class TestGraphView:
    def test_round_trip_equals_original(self, fig1, bank_catalog):
        graph = bank_catalog.execute(BANK_DDL)
        from repro.graph import graph_to_dict

        original = graph_to_dict(fig1)
        rebuilt = graph_to_dict(graph)
        # name differs; structure must match
        original["name"] = rebuilt["name"] = "g"
        # properties stored as NULL-free dicts; compare directly
        assert rebuilt == original

    def test_catalog_registration(self, bank_catalog):
        bank_catalog.execute(BANK_DDL)
        assert bank_catalog.has_graph("bank")
        with pytest.raises(PgqError):
            bank_catalog.execute(BANK_DDL)  # duplicate name

    def test_programmatic_spec(self):
        catalog = Catalog()
        catalog.register_table("P", Table(["ID", "name"], [("p1", "x")]))
        catalog.register_table(
            "K", Table(["ID", "A", "B"], [("k1", "p1", "p1")])
        )
        spec = GraphSpec(
            name="g",
            vertex_tables=[VertexTableSpec(table="P")],
            edge_tables=[
                EdgeTableSpec(
                    table="K", source_key="A", source_table="P",
                    destination_key="B", destination_table="P",
                )
            ],
        )
        graph = build_graph_view(catalog, spec)
        assert graph.num_nodes == 1
        assert graph.edge("k1").is_self_loop
        assert graph.node("p1").has_label("P")  # default label = table name

    def test_dangling_edge_reference(self):
        catalog = Catalog()
        catalog.register_table("P", Table(["ID"], [("p1",)]))
        catalog.register_table("K", Table(["ID", "A", "B"], [("k1", "p1", "zzz")]))
        spec = GraphSpec(
            name="g",
            vertex_tables=[VertexTableSpec(table="P")],
            edge_tables=[
                EdgeTableSpec(
                    table="K", source_key="A", source_table="P",
                    destination_key="B", destination_table="P",
                )
            ],
        )
        with pytest.raises(DdlError):
            build_graph_view(catalog, spec)

    def test_key_collision_across_vertex_tables(self):
        catalog = Catalog()
        catalog.register_table("P", Table(["ID"], [("x",)]))
        catalog.register_table("Q", Table(["ID"], [("x",)]))
        spec = GraphSpec(
            name="g",
            vertex_tables=[VertexTableSpec(table="P"), VertexTableSpec(table="Q")],
        )
        with pytest.raises(DdlError):
            build_graph_view(catalog, spec)

    def test_null_key_rejected(self):
        from repro.values import NULL

        catalog = Catalog()
        catalog.register_table("P", Table(["ID"], [(NULL,)]))
        spec = GraphSpec(name="g", vertex_tables=[VertexTableSpec(table="P")])
        with pytest.raises(DdlError):
            build_graph_view(catalog, spec)


class TestGraphTable:
    def test_columns_projection(self, fig1):
        table = graph_table(
            fig1,
            "MATCH (x:Account)-[t:Transfer]->(y) "
            "COLUMNS (x.owner AS sender, y.owner AS receiver, t.amount AS amount)",
        )
        assert table.columns == ("sender", "receiver", "amount")
        assert len(table) == 8
        assert {"sender": "Scott", "receiver": "Mike", "amount": 8_000_000} in table.to_dicts()

    def test_default_column_names(self, fig1):
        table = graph_table(fig1, "MATCH (x:Account) COLUMNS (x.owner, x)")
        assert table.columns == ("owner", "x")

    def test_group_aggregates_in_columns(self, fig1):
        table = graph_table(
            fig1,
            "MATCH TRAIL (a WHERE a.owner='Dave')-[e:Transfer]->*"
            "(b WHERE b.owner='Aretha') "
            "COLUMNS (COUNT(e) AS hops, SUM(e.amount) AS total)",
        )
        assert sorted(d["hops"] for d in table.to_dicts()) == [2, 4, 5]

    def test_elements_project_to_ids(self, fig1):
        table = graph_table(fig1, "MATCH (c:City) COLUMNS (c)")
        assert table.to_dicts() == [{"c": "c2"}]

    def test_missing_columns_clause(self, fig1):
        with pytest.raises(PgqError):
            graph_table(fig1, "MATCH (x:Account)")

    def test_parse_errors_carry_the_table_name(self, fig1):
        """Multi-GRAPH_TABLE queries need to know which table is broken."""
        with pytest.raises(PgqError, match="in GRAPH_TABLE 'blocked'"):
            graph_table(fig1, "MATCH (x:Account)", name="blocked")
        with pytest.raises(PgqError, match="in GRAPH_TABLE 'syntax'"):
            graph_table(fig1, "MATCH (x:Account] COLUMNS (x.owner)", name="syntax")
        with pytest.raises(PgqError, match="in GRAPH_TABLE 'graph_table'"):
            # the default name still appears
            graph_table(fig1, "MATCH (x:Account) COLUMNS (x.owner) trailing")

    def test_limit_keeps_prefix(self, fig1):
        full = graph_table(fig1, "MATCH (x:Account) COLUMNS (x.owner)")
        limited = graph_table(fig1, "MATCH (x:Account) COLUMNS (x.owner)", limit=2)
        assert limited.rows == full.rows[:2]

    def test_sql_composition_on_result(self, fig1):
        table = graph_table(
            fig1,
            "MATCH (x:Account)-[t:Transfer]->(y) "
            "COLUMNS (x.owner AS sender, t.amount AS amount)",
        )
        summary = table.group_by(["sender"], {"total": ("SUM", "amount")})
        totals = {d["sender"]: d["total"] for d in summary.to_dicts()}
        assert totals["Mike"] == 16_000_000
        assert totals["Dave"] == 14_000_000


class TestCatalog:
    def test_table_listing(self):
        catalog = Catalog()
        catalog.register_table("B", Table(["ID"], [("x",)]))
        catalog.register_table("A", Table(["ID"], [("y",)]))
        assert list(catalog.table_names()) == ["A", "B"]
        assert catalog.has_table("A") and not catalog.has_table("C")

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.register_table("T", Table(["ID"]))
        with pytest.raises(PgqError):
            catalog.register_table("T", Table(["ID"]))

    def test_unknown_lookups(self):
        catalog = Catalog()
        with pytest.raises(PgqError):
            catalog.table("nope")
        with pytest.raises(PgqError):
            catalog.graph("nope")

    def test_graph_listing(self, fig1):
        catalog = Catalog()
        catalog.register_graph("g1", fig1)
        assert list(catalog.graph_names()) == ["g1"]
        assert catalog.graph("g1") is fig1
