"""Unit tests for the mini relational engine."""

import pytest

from repro.errors import TableError
from repro.pgq import Table
from repro.values import NULL, is_null


@pytest.fixture()
def accounts():
    return Table(
        ["ID", "owner", "amount"],
        [
            ("a1", "Scott", 8),
            ("a2", "Aretha", 10),
            ("a3", "Mike", NULL),
            ("a4", "Jay", 4),
        ],
        name="accounts",
    )


class TestConstruction:
    def test_arity_checked(self):
        with pytest.raises(TableError):
            Table(["a", "b"], [(1,)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(TableError):
            Table(["a", "a"])

    def test_from_dicts_fills_null(self):
        t = Table.from_dicts(["a", "b"], [{"a": 1}])
        assert is_null(t.rows[0][1])

    def test_to_dicts_round_trip(self, accounts):
        again = Table.from_dicts(accounts.columns, accounts.to_dicts())
        assert again == accounts


class TestOperators:
    def test_select_callable(self, accounts):
        kept = accounts.select(lambda r: r["owner"].startswith("S"))
        assert len(kept) == 1

    def test_where_condition_string(self, accounts):
        kept = accounts.where("amount > 5")
        assert sorted(d["ID"] for d in kept.to_dicts()) == ["a1", "a2"]

    def test_where_three_valued(self, accounts):
        # NULL amount row is dropped by both a condition and its negation
        assert len(accounts.where("amount > 5")) + len(
            accounts.where("NOT (amount > 5)")
        ) == 3

    def test_project_and_rename(self, accounts):
        t = accounts.project(["owner"]).rename({"owner": "name"})
        assert t.columns == ("name",)
        with pytest.raises(TableError):
            accounts.project(["nope"])

    def test_extend(self, accounts):
        t = accounts.extend("double", lambda r: None if is_null(r["amount"]) else r["amount"] * 2)
        assert t.to_dicts()[0]["double"] == 16

    def test_distinct(self):
        t = Table(["x"], [(1,), (1,), (2,)])
        assert len(t.distinct()) == 2

    def test_union_all_and_union(self):
        t1 = Table(["x"], [(1,), (2,)])
        t2 = Table(["x"], [(2,), (3,)])
        assert len(t1.union_all(t2)) == 4
        assert len(t1.union(t2)) == 3
        with pytest.raises(TableError):
            t1.union_all(Table(["y"], [(1,)]))

    def test_join(self, accounts):
        cities = Table(["AID", "city"], [("a1", "Z"), ("a2", "AM"), ("a9", "X")])
        joined = accounts.join(cities, on=[("ID", "AID")])
        assert len(joined) == 2
        assert set(joined.columns) == {"ID", "owner", "amount", "city"}

    def test_join_nulls_never_match(self):
        left = Table(["k"], [(NULL,), (1,)])
        right = Table(["k2"], [(NULL,), (1,)])
        assert len(left.join(right, on=[("k", "k2")])) == 1

    def test_order_by_with_nulls_last(self, accounts):
        ordered = accounts.order_by(["amount"])
        assert [d["ID"] for d in ordered.to_dicts()] == ["a4", "a1", "a2", "a3"]

    def test_order_by_descending(self, accounts):
        ordered = accounts.order_by(["owner"], descending=True)
        assert ordered.to_dicts()[0]["owner"] == "Scott"

    def test_limit_offset(self, accounts):
        assert len(accounts.limit(2)) == 2
        assert accounts.limit(2, offset=3).to_dicts()[0]["ID"] == "a4"


class TestGroupBy:
    def test_aggregates(self):
        t = Table(
            ["grp", "v"],
            [("a", 1), ("a", 3), ("b", 5), ("b", NULL)],
        )
        g = t.group_by(
            ["grp"],
            {
                "n": ("COUNT", "*"),
                "nv": ("COUNT", "v"),
                "total": ("SUM", "v"),
                "mean": ("AVG", "v"),
                "low": ("MIN", "v"),
                "high": ("MAX", "v"),
            },
        )
        rows = {d["grp"]: d for d in g.to_dicts()}
        assert rows["a"] == {"grp": "a", "n": 2, "nv": 2, "total": 4, "mean": 2.0, "low": 1, "high": 3}
        assert rows["b"]["n"] == 2 and rows["b"]["nv"] == 1 and rows["b"]["total"] == 5

    def test_sum_of_empty_group_is_null(self):
        t = Table(["grp", "v"], [("a", NULL)])
        g = t.group_by(["grp"], {"s": ("SUM", "v")})
        assert is_null(g.to_dicts()[0]["s"])

    def test_count_star_only(self):
        t = Table(["grp"], [("a",)])
        with pytest.raises(TableError):
            t.group_by(["grp"], {"s": ("SUM", "*")})


class TestEdgeCases:
    """Corner cases the SQL executor leans on (empty inputs, NULLs,
    duplicate names)."""

    def test_join_with_empty_right_side(self, accounts):
        empty = Table(["ID2", "extra"], [], name="empty")
        joined = accounts.rename({"ID": "ID2"}).join(empty, [("ID2", "ID2")])
        assert len(joined) == 0
        assert joined.columns == ("ID2", "owner", "amount", "extra")

    def test_join_with_empty_left_side(self, accounts):
        empty = Table(["K"], [], name="empty")
        joined = empty.join(accounts.rename({"ID": "K"}), [("K", "K")])
        assert len(joined) == 0

    def test_join_of_two_empty_tables(self):
        a = Table(["x"], [])
        b = Table(["y", "x2"], [])
        assert len(a.join(b.rename({"x2": "x"}), [("x", "x")])) == 0

    def test_join_duplicate_column_aliases_rejected(self, accounts):
        other = Table(["ID", "owner"], [("a1", "Someone")], name="other")
        renamed = other.rename({"ID": "ref"})
        with pytest.raises(TableError, match="duplicate|rename"):
            accounts.join(renamed, [("ID", "ref")])

    def test_union_all_arity_mismatch(self, accounts):
        with pytest.raises(TableError, match="UNION ALL"):
            accounts.union_all(Table(["only"], [(1,)]))

    def test_where_null_arithmetic_is_unknown(self, accounts):
        # NULL + 1 is NULL; a NULL comparison is UNKNOWN -> row dropped
        assert len(accounts.where("amount + 1 > 0")) == 3

    def test_where_is_null_predicates(self, accounts):
        assert accounts.where("amount IS NULL").to_dicts()[0]["owner"] == "Mike"
        assert len(accounts.where("amount IS NOT NULL")) == 3

    def test_aggregates_ignore_null_inputs(self, accounts):
        grouped = accounts.extend("grp", lambda row: "g").group_by(
            ["grp"],
            {
                "n_rows": ("COUNT", "*"),
                "n_amounts": ("COUNT", "amount"),
                "total": ("SUM", "amount"),
                "mean": ("AVG", "amount"),
            },
        )
        [row] = grouped.to_dicts()
        assert row["n_rows"] == 4
        assert row["n_amounts"] == 3  # Mike's NULL not counted
        assert row["total"] == 22
        assert row["mean"] == pytest.approx(22 / 3)

    def test_group_by_treats_nulls_as_one_group(self, accounts):
        grouped = accounts.extend(
            "bucket", lambda row: NULL if is_null(row["amount"]) else "known"
        ).group_by(["bucket"], {"n": ("COUNT", "*")})
        counts = {repr(d["bucket"]): d["n"] for d in grouped.to_dicts()}
        assert counts[repr(NULL)] == 1

    def test_distinct_on_empty_table(self):
        assert len(Table(["a"], []).distinct()) == 0

    def test_order_by_empty_table(self):
        assert len(Table(["a"], []).order_by(["a"])) == 0

    def test_unknown_column_names_table(self, accounts):
        with pytest.raises(TableError, match="accounts"):
            accounts.project(["nope"])


class TestDisplay:
    def test_pretty(self, accounts):
        text = accounts.pretty(max_rows=2)
        assert "ID | owner | amount" in text
        assert "more rows" in text

    def test_repr(self, accounts):
        assert "accounts" in repr(accounts)
