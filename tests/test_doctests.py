"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.extensions.macros
import repro.graph.builder
import repro.graph.model


@pytest.mark.parametrize(
    "module",
    [
        repro.graph.model,
        repro.graph.builder,
        repro.extensions.macros,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0
