"""Shared fixtures: the paper's graph and small purpose-built graphs."""

import pytest

from repro.datasets import figure1_graph
from repro.graph import GraphBuilder


@pytest.fixture()
def fig1():
    """A fresh copy of the paper's Figure 1 banking graph."""
    return figure1_graph()


@pytest.fixture()
def mixed_graph():
    """One directed and one undirected edge plus a self-loop.

    Used by the edge-orientation (Figure 5) tests: from node ``a``,
    edge ``d`` points right to ``b``; edge ``u`` is undirected to ``c``;
    ``loop`` is a directed self-loop on ``a``.
    """
    return (
        GraphBuilder("mixed")
        .node("a", "N")
        .node("b", "N")
        .node("c", "N")
        .directed("d", "a", "b", "E")
        .undirected("u", "a", "c", "E")
        .directed("loop", "a", "a", "E")
        .build()
    )


@pytest.fixture()
def two_cycle():
    """Two nodes with edges both ways (the smallest cyclic graph)."""
    return (
        GraphBuilder("two_cycle")
        .node("x", "N")
        .node("y", "N")
        .directed("f", "x", "y", "E")
        .directed("g", "y", "x", "E")
        .build()
    )
