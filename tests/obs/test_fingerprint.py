"""Query fingerprinting: idempotent, literal-insensitive, shape-faithful.

The fingerprint is the label dimension every workload metric aggregates
under, so its contract carries the whole telemetry layer: two runs of
the same query *shape* must collapse onto one fingerprint regardless of
literal values, whitespace, or keyword case — and structurally distinct
queries must not collide within a realistic corpus.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.obs.fingerprint import normalize_query, query_fingerprint

# A corpus of structurally distinct queries across all three surfaces.
CORPUS = [
    "MATCH (a:Account)",
    "MATCH (a:Account)-[t:Transfer]->(b)",
    "MATCH (a:Account)-[t:Transfer]->(b:Account)",
    "MATCH (a:Account WHERE a.isBlocked='yes')-[t:Transfer]->(b)",
    "MATCH (a)-[:Transfer]->(b) MATCH (b)-[:Transfer]->(c) RETURN a.owner AS x",
    "MATCH (a:Account) RETURN a.owner AS owner ORDER BY owner LIMIT 5",
    "MATCH (a:Account) RETURN DISTINCT a.owner AS owner",
    "MATCH ANY SHORTEST p = (a)-[:Transfer]->*(b)",
    "MATCH (a)-[e:Transfer WHERE e.amount > 100]->(b)",
    "MATCH (a)-[e:Transfer]->(b) WHERE a.owner = 'x'",
    "SELECT g.src FROM GRAPH_TABLE(bank MATCH (a:Account)-[t:Transfer]->(b) "
    "COLUMNS (a.owner AS src)) AS g",
    "SELECT g.src FROM GRAPH_TABLE(bank MATCH (a:Account)-[t:Transfer]->(b) "
    "COLUMNS (a.owner AS src)) AS g LIMIT 3",
    "SELECT COUNT(*) AS n FROM GRAPH_TABLE(bank MATCH (a:Account) "
    "COLUMNS (a.owner AS src))",
]


def test_idempotent_on_corpus():
    for query in CORPUS:
        normalized = normalize_query(query)
        assert normalize_query(normalized) == normalized
        assert query_fingerprint(normalized) == query_fingerprint(query)


def test_whitespace_and_keyword_case_insensitive():
    spaced = "MATCH   (a:Account)\n\t-[t:Transfer]->   (b)"
    compact = "match (a:Account)-[t:Transfer]->(b)"
    assert query_fingerprint(spaced) == query_fingerprint(compact)


def test_identifier_case_is_shape():
    # Identifiers are case-sensitive in the language, so case changes
    # the shape; only *keywords* are case-canonicalized.
    assert query_fingerprint("MATCH (a:Account)") != query_fingerprint(
        "MATCH (a:ACCOUNT)"
    )


def test_literals_are_erased():
    a = "MATCH (a:Account WHERE a.isBlocked='yes')-[t:Transfer]->(b)"
    b = "MATCH (a:Account WHERE a.isBlocked='no')-[t:Transfer]->(b)"
    c = "MATCH (a:Account WHERE a.isBlocked='maybe so')-[t:Transfer]->(b)"
    assert query_fingerprint(a) == query_fingerprint(b) == query_fingerprint(c)
    assert "?" in normalize_query(a)
    assert "yes" not in normalize_query(a)


def test_numeric_literals_are_erased():
    assert query_fingerprint(
        "MATCH (a)-[e:Transfer WHERE e.amount > 100]->(b)"
    ) == query_fingerprint("MATCH (a)-[e:Transfer WHERE e.amount > 2.5e6]->(b)")


def test_corpus_has_no_collisions():
    fingerprints = {}
    for query in CORPUS:
        fingerprint = query_fingerprint(query)
        assert fingerprint not in fingerprints, (
            f"collision: {query!r} vs {fingerprints[fingerprint]!r}"
        )
        fingerprints[fingerprint] = query


def test_unparseable_text_still_fingerprints():
    # Fallback path: whitespace-collapse, never an exception.
    assert query_fingerprint("??? not a query ???")
    assert query_fingerprint("MATCH (((") == query_fingerprint("MATCH  \n (((")


@given(st.text(min_size=0, max_size=40))
@settings(max_examples=200, deadline=None)
def test_idempotent_on_arbitrary_text(text):
    normalized = normalize_query(text)
    assert normalize_query(normalized) == normalized


@given(
    amount=st.integers(min_value=0, max_value=10**9),
    owner=st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" _-"
        ),
        max_size=20,
    ),
)
@settings(max_examples=100, deadline=None)
def test_literal_insensitive_over_generated_literals(amount, owner):
    shape = (
        "MATCH (a:Account WHERE a.owner='{owner}')"
        "-[e:Transfer WHERE e.amount > {amount}]->(b)"
    )
    reference = shape.format(owner="x", amount=1)
    varied = shape.format(owner=owner.replace("'", ""), amount=amount)
    assert query_fingerprint(varied) == query_fingerprint(reference)
