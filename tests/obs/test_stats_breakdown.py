"""PipelineStats breakdowns and the steps-counted-exactly-once audit.

The flat counters (`steps`, `matches`, `rows`) predate tracing and must
keep their meaning; the trace is a decomposition of them, so for any
fully drained traced run ``trace.total_steps() == stats.steps``.  The
two historically risky paths are seeded chained MATCH (one matcher per
seed, memoized — steps must not double on memo hits) and
budget-truncated runs (the search generator's finally must record steps
exactly once when the budget closes it mid-flight).
"""

from repro.gpml.engine import match_iter
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import PipelineStats
from repro.gql.query import execute_gql_iter, parse_gql_query
from repro.graph import GraphBuilder


def fan_in_graph():
    """Many (x)->(hub) edges so a chained MATCH re-seeds the same hub."""
    builder = GraphBuilder("fan")
    builder.node("hub", "B", v=0)
    builder.node("out1", "C", v=1)
    builder.node("out2", "C", v=2)
    for i in range(4):
        builder.node(f"s{i}", "A", v=i)
        builder.directed(f"e{i}", f"s{i}", "hub", "E")
    builder.directed("f1", "hub", "out1", "F")
    builder.directed("f2", "hub", "out2", "F")
    return builder.build()


# ----------------------------------------------------------------------
# breakdown(): the flat counters decomposed per stage
# ----------------------------------------------------------------------
def test_breakdown_decomposes_flat_counters(fig1):
    stats = PipelineStats.traced()
    rows = list(
        match_iter(
            fig1,
            "MATCH (a:Account)-[t:Transfer]->(b:Account) WHERE a.owner <> 'Mike'",
            stats=stats,
        )
    )
    breakdown = stats.breakdown()
    assert breakdown, "traced run produced an empty breakdown"
    for entry in breakdown:
        assert set(entry) == {
            "name", "kind", "depth", "rows_in", "rows_out",
            "steps", "matches", "peak_rows", "elapsed_ms",
        }
    by_name = {entry["name"]: entry for entry in breakdown}
    search = next(e for n, e in by_name.items() if "search" in n)
    assert search["steps"] == stats.steps
    assert by_name["row delivery"]["rows_out"] == len(rows) == stats.rows
    assert sum(e["steps"] for e in breakdown) == stats.steps


def test_breakdown_is_empty_without_a_trace():
    assert PipelineStats().breakdown() == []


def test_breakdown_per_statement(fig1):
    stats = PipelineStats.traced()
    query = parse_gql_query(
        "MATCH (a:Account)-[:Transfer]->(b:Account) "
        "MATCH (b)-[:Transfer]->(c:Account) "
        "RETURN a.owner AS src, c.owner AS dst"
    )
    records = list(execute_gql_iter(fig1, query, stats=stats))
    statements = [e for e in stats.breakdown() if e["kind"] == "statement"]
    assert len(statements) == 3  # two MATCH statements + RETURN
    assert statements[0]["rows_in"] == 1  # the initial unit row
    # rows chain: each statement consumes what the previous produced
    assert statements[1]["rows_in"] == statements[0]["rows_out"]
    assert statements[2]["rows_in"] == statements[1]["rows_out"]
    assert statements[2]["rows_out"] == len(records) == stats.rows


# ----------------------------------------------------------------------
# steps counted exactly once: memoized seeded search
# ----------------------------------------------------------------------
def test_seeded_memoized_steps_counted_once():
    graph = fan_in_graph()
    stats = PipelineStats.traced()
    query = parse_gql_query(
        "MATCH (x:A)-[e:E]->(y) MATCH (y)-[f:F]->(z) RETURN x.v AS xv, z.v AS zv"
    )
    records = list(execute_gql_iter(graph, query, stats=stats))
    assert len(records) == 8  # 4 seeds x 2 hub out-edges

    statement2 = stats.trace.find("statement #2")
    # 4 incoming rows, all binding the same hub: 1 fresh run, 3 memo hits
    assert statement2.counts["seeded_runs"] == 1
    assert statement2.counts["seed_memo_miss"] == 1
    assert statement2.counts["seed_memo_hit"] == 3
    # the audit: memo hits replay cached rows without re-counting steps
    assert stats.trace.total_steps() == stats.steps


def test_seeded_distinct_seeds_all_counted():
    graph = fan_in_graph()
    stats = PipelineStats.traced()
    query = parse_gql_query(
        "MATCH (y:B)-[f:F]->(z) MATCH (z2:A)-[e:E]->(y) "
        "RETURN z.v AS zv, z2.v AS xv"
    )
    list(execute_gql_iter(graph, query, stats=stats))
    assert stats.trace.total_steps() == stats.steps


# ----------------------------------------------------------------------
# steps counted exactly once: budget-truncated runs
# ----------------------------------------------------------------------
def test_budget_truncated_steps_counted_once(fig1):
    stats = PipelineStats.traced()
    query = parse_gql_query(
        "MATCH (a:Account)-[:Transfer]->(b:Account) "
        "MATCH (b)-[:Transfer]->(c:Account) "
        "RETURN a.owner AS src LIMIT 2"
    )
    records = list(execute_gql_iter(fig1, query, stats=stats))
    assert len(records) == 2 == stats.rows
    # the budget closed searches mid-flight; their finally blocks must
    # have recorded steps exactly once each
    assert stats.trace.total_steps() == stats.steps
    ret = stats.trace.find("RETURN")
    assert ret.events and ret.events[0]["event"] == "budget_satisfied"


def test_match_iter_limit_steps_counted_once(fig1):
    stats = PipelineStats.traced()
    rows = list(
        match_iter(
            fig1, "MATCH (a:Account)-[t:Transfer]->(b:Account)",
            limit=3, stats=stats,
        )
    )
    assert len(rows) == 3 == stats.rows
    assert stats.trace.total_steps() == stats.steps
    assert 0 < stats.steps


def test_hash_join_fallback_steps_counted_once(fig1):
    config = MatcherConfig(seed_chained_match=False)
    stats = PipelineStats.traced()
    query = parse_gql_query(
        "MATCH (a:Account)-[:Transfer]->(b:Account) "
        "MATCH (b)-[:Transfer]->(c:Account) "
        "RETURN a.owner AS src, c.owner AS dst"
    )
    records = list(execute_gql_iter(fig1, query, config, stats=stats))
    assert records
    assert stats.trace.total_steps() == stats.steps
    assert stats.trace.find("hash-join build of the match table") is not None
