"""Unit tests for the span tree, JSON export, and schema validators."""

import json

import pytest

from repro.gpml.engine import match_iter
from repro.gpml.streaming import PipelineStats
from repro.obs import (
    BENCH_SCHEMA,
    TRACE_SCHEMA,
    QueryTrace,
    SchemaError,
    Span,
    counted_in,
    timed_rows,
    tracing_stats,
    validate_bench_document,
    validate_trace_document,
)
from repro.obs.schema import main as schema_main


# ----------------------------------------------------------------------
# Span / QueryTrace basics
# ----------------------------------------------------------------------
def test_span_tree_construction():
    trace = QueryTrace(query="MATCH (a)", engine="gpml")
    outer = trace.root.child("outer", mode="streaming")
    inner = outer.child("inner search", kind="stage", anchor="left via x")
    inner.steps = 7
    inner.bump("seed_memo_hit")
    inner.bump("seed_memo_hit")
    inner.event("budget_satisfied", taken=3)

    assert [s.name for s in trace.walk()] == ["query", "outer", "inner search"]
    assert trace.find("inner").meta["anchor"] == "left via x"
    assert trace.find_all("search") == [inner]
    assert trace.total_steps() == 7
    assert inner.counts == {"seed_memo_hit": 2}
    assert inner.events == [{"event": "budget_satisfied", "taken": 3}]
    assert [(d, s.name) for d, s in trace.root.flatten()] == [
        (0, "query"), (1, "outer"), (2, "inner search"),
    ]


def test_timed_rows_counts_and_times():
    span = Span("stage")
    out = list(timed_rows(span, iter([1, 2, 3])))
    assert out == [1, 2, 3]
    assert span.rows_out == 3
    assert span.elapsed >= 0.0


def test_counted_in_counts_consumed_rows():
    span = Span("stage")
    assert list(counted_in(span, iter("ab"))) == ["a", "b"]
    assert span.rows_in == 2


def test_tracing_stats_factory():
    stats = tracing_stats(query="MATCH (a)", engine="gql")
    assert isinstance(stats, PipelineStats)
    assert stats.trace is not None
    assert stats.trace.query == "MATCH (a)"
    assert stats.trace.engine == "gql"
    assert PipelineStats.traced().trace is not None


# ----------------------------------------------------------------------
# to_dict / repro.trace/v1
# ----------------------------------------------------------------------
def test_trace_to_dict_is_schema_valid_and_json_serializable(fig1):
    stats = tracing_stats(query="MATCH (a:Account)-[t:Transfer]->(b)", engine="gpml")
    rows = list(match_iter(fig1, "MATCH (a:Account)-[t:Transfer]->(b)", stats=stats))
    document = stats.trace.to_dict(stats=stats)

    validate_trace_document(document)
    json.dumps(document)  # must round-trip without a custom encoder
    assert document["schema"] == TRACE_SCHEMA
    assert document["engine"] == "gpml"
    assert document["totals"]["steps"] == stats.steps
    assert document["totals"]["spans"] == sum(1 for _ in stats.trace.walk())
    assert document["stats"] == {
        "steps": stats.steps, "matches": stats.matches, "rows": len(rows),
    }
    names = [child["name"] for child in document["root"]["children"]]
    assert any("search" in name for name in names)


def test_validate_trace_rejects_missing_span_field(fig1):
    stats = tracing_stats(engine="gpml")
    list(match_iter(fig1, "MATCH (a:Account)", stats=stats))
    document = stats.trace.to_dict()
    del document["root"]["children"][0]["rows_out"]
    with pytest.raises(SchemaError, match="rows_out"):
        validate_trace_document(document)


def test_validate_trace_rejects_wrong_schema_tag():
    with pytest.raises(SchemaError, match="schema"):
        validate_trace_document({"schema": "repro.trace/v999"})


# ----------------------------------------------------------------------
# repro.bench/v1
# ----------------------------------------------------------------------
def _bench_doc():
    return {
        "schema": BENCH_SCHEMA,
        "suite": "observability",
        "entries": [
            {
                "label": "baseline",
                "graph": {"nodes": 10, "edges": 20},
                "results": [
                    {
                        "name": "q1", "engine": "gql", "query": "MATCH (a) RETURN a",
                        "rows": 5, "steps": 9, "matches": 5, "wall_ms": 1.25,
                    }
                ],
            }
        ],
    }


def test_validate_bench_document_accepts_reporting_shape():
    validate_bench_document(_bench_doc())


@pytest.mark.parametrize(
    "mutate,fragment",
    [
        (lambda d: d.pop("suite"), "suite"),
        (lambda d: d["entries"].clear(), "entries"),
        (lambda d: d["entries"][0]["graph"].pop("edges"), "edges"),
        (lambda d: d["entries"][0]["results"][0].pop("wall_ms"), "wall_ms"),
        (
            lambda d: d["entries"][0]["results"][0].update(steps="many"),
            "steps",
        ),
    ],
)
def test_validate_bench_document_rejects_corruption(mutate, fragment):
    document = _bench_doc()
    mutate(document)
    with pytest.raises(SchemaError, match=fragment):
        validate_bench_document(document)


# ----------------------------------------------------------------------
# the command-line validator
# ----------------------------------------------------------------------
def test_schema_cli_validates_and_rejects(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_bench_doc()), encoding="utf-8")
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope"}), encoding="utf-8")

    assert schema_main([str(good)]) == 0
    assert BENCH_SCHEMA in capsys.readouterr().out
    assert schema_main([str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().out
