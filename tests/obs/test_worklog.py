"""Workload telemetry: the query log and its threading through the hosts."""

import pytest

from repro.gpml.engine import match_iter, prepare
from repro.gpml.streaming import PipelineStats
from repro.gql.session import GqlSession
from repro.obs import Telemetry, WorkLog, validate_document
from repro.obs.fingerprint import query_fingerprint
from repro.obs.worklog import QueryRecord, stage_label
from repro.pgq.tabular import tabular_representation
from repro.sql.database import Database


@pytest.fixture()
def graph(fig1):
    return fig1


def _record(**overrides):
    base = dict(
        fingerprint="abc", query="MATCH (a)", engine="gql",
        wall_ms=1.0, rows=1, steps=1, matches=1,
    )
    base.update(overrides)
    return QueryRecord(**base)


# -- the ring buffer --------------------------------------------------------


def test_worklog_is_bounded():
    worklog = WorkLog(capacity=3)
    for index in range(10):
        worklog.append(_record(fingerprint=f"f{index}"))
    assert len(worklog) == 3
    assert [r.fingerprint for r in worklog.entries()] == ["f7", "f8", "f9"]


def test_worklog_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        WorkLog(capacity=0)


def test_slow_queries_filter():
    worklog = WorkLog()
    worklog.append(_record(slow=False))
    worklog.append(_record(fingerprint="slow", slow=True))
    assert [r.fingerprint for r in worklog.slow_queries()] == ["slow"]


def test_stage_label_strips_ordinals_and_query_text():
    assert stage_label("pattern #2 search (enumerate)") == "pattern search (enumerate)"
    assert stage_label("MATCH: (a:Account)-[t]->(b)") == "MATCH"
    assert stage_label("project") == "project"


# -- recording semantics ----------------------------------------------------


def test_record_query_populates_registry_and_log():
    telemetry = Telemetry(slow_ms=None)
    stats = PipelineStats()
    stats.rows, stats.steps, stats.matches = 4, 20, 5
    record = telemetry.record_query("gql", "MATCH (a:Account)", 0.002, stats)
    assert record.fingerprint == query_fingerprint("MATCH (a:Account)")
    assert record.rows == 4 and record.steps == 20 and record.matches == 5
    assert record.wall_ms == pytest.approx(2.0)
    assert not record.slow and record.trace is None
    labels = {"engine": "gql", "fingerprint": record.fingerprint}
    assert telemetry.queries_total.value(**labels) == 1
    assert telemetry.rows_total.value(**labels) == 4
    assert telemetry.steps_total.value(**labels) == 20
    assert telemetry.latency.sample(**labels).count == 1
    assert telemetry.worklog_size.value() == 1


def test_slow_query_keeps_trace_and_counts():
    telemetry = Telemetry(slow_ms=0.0)
    stats = telemetry.stats_for(query="MATCH (a)", engine="gql")
    stats.trace.root.child("pattern #1 search (enumerate)")
    telemetry.record_query("gql", "MATCH (a)", 0.5, stats)
    (record,) = telemetry.worklog.slow_queries()
    assert record.slow
    assert record.trace is not None and record.trace["schema"] == "repro.trace/v1"
    assert telemetry.slow_total.value(engine="gql") == 1
    # Stage histogram picked up the normalized span name.
    assert (
        telemetry.stage_latency.sample(
            engine="gql", stage="pattern search (enumerate)"
        ).count
        == 1
    )
    validate_document(telemetry.to_dict())


def test_fast_query_drops_trace():
    telemetry = Telemetry(slow_ms=10_000.0)
    stats = telemetry.stats_for(query="MATCH (a)", engine="gql")
    telemetry.record_query("gql", "MATCH (a)", 0.0001, stats)
    (record,) = telemetry.worklog.entries()
    assert not record.slow and record.trace is None


def test_queries_without_text_are_unknown():
    telemetry = Telemetry()
    record = telemetry.record_query("gpml", None, 0.001)
    assert record.fingerprint == "unknown"
    assert telemetry.queries_total.value(engine="gpml", fingerprint="unknown") == 1


# -- threading through the hosts --------------------------------------------


def test_gql_session_records_queries(graph):
    telemetry = Telemetry(slow_ms=None)
    session = GqlSession(graph, telemetry=telemetry)
    result = session.execute(
        "MATCH (a:Account)-[t:Transfer]->(b) RETURN a.owner, b.owner"
    )
    (record,) = telemetry.worklog.entries()
    assert record.engine == "gql"
    assert record.rows == len(result.records)
    assert record.steps > 0
    assert record.plan is not None  # autotrace captured the planner line


def test_gql_results_identical_with_and_without_telemetry(graph):
    query = "MATCH (a:Account)-[t:Transfer]->(b) RETURN a.owner, b.owner"
    plain = GqlSession(graph).execute(query)
    metered = GqlSession(graph, telemetry=Telemetry()).execute(query)
    assert metered.records == plain.records
    assert metered.columns == plain.columns


def test_gql_early_termination_logs_partial_delivery(graph):
    telemetry = Telemetry(slow_ms=None)
    session = GqlSession(graph, telemetry=telemetry)
    assert session.first("MATCH (a:Account) RETURN a.owner") is not None
    (record,) = telemetry.worklog.entries()
    assert record.rows == 1  # not the full Account count


def test_gql_abandoned_iterator_still_records(graph):
    telemetry = Telemetry(slow_ms=None)
    session = GqlSession(graph, telemetry=telemetry)
    iterator = session.execute_iter("MATCH (a:Account) RETURN a.owner")
    next(iterator)
    iterator.close()
    (record,) = telemetry.worklog.entries()
    assert record.rows == 1


def test_database_records_queries(graph):
    telemetry = Telemetry(slow_ms=None)
    database = Database(telemetry=telemetry)
    database.register_graph("bank", graph)
    table = database.execute(
        "SELECT g.src FROM GRAPH_TABLE(bank MATCH (a:Account)-[t:Transfer]->(b) "
        "COLUMNS (a.owner AS src)) AS g"
    )
    (record,) = telemetry.worklog.entries()
    assert record.engine == "sql"
    assert record.rows == len(table.rows)


def test_database_ddl_and_explain_not_recorded(graph):
    telemetry = Telemetry(slow_ms=None)
    database = Database(telemetry=telemetry)
    database.register_graph("bank", graph)
    database.explain(
        "SELECT g.src FROM GRAPH_TABLE(bank MATCH (a:Account) "
        "COLUMNS (a.owner AS src)) AS g"
    )
    assert len(telemetry.worklog) == 0


def test_sql_results_identical_with_and_without_telemetry(graph):
    sql = (
        "SELECT g.src FROM GRAPH_TABLE(bank MATCH (a:Account)-[t:Transfer]->(b) "
        "COLUMNS (a.owner AS src)) AS g ORDER BY g.src"
    )

    def run(telemetry):
        database = Database(telemetry=telemetry)
        database.register_graph("bank", graph)
        for name, table in tabular_representation(graph).items():
            database.register_table(name, table)
        return database.execute(sql).rows

    assert run(None) == run(Telemetry())


def test_match_iter_records_via_telemetry(graph):
    telemetry = Telemetry(slow_ms=None)
    rows = list(
        match_iter(
            graph,
            prepare("MATCH (a:Account)-[t:Transfer]->(b)"),
            telemetry=telemetry,
        )
    )
    (record,) = telemetry.worklog.entries()
    assert record.engine == "gpml"
    assert record.rows == len(rows)
    assert record.fingerprint == query_fingerprint(
        "MATCH (a:Account)-[t:Transfer]->(b)"
    )


def test_shared_telemetry_aggregates_across_hosts(graph):
    telemetry = Telemetry(slow_ms=None)
    session = GqlSession(graph, telemetry=telemetry)
    database = Database(telemetry=telemetry)
    database.register_graph("bank", graph)
    session.execute("MATCH (a:Account) RETURN a.owner")
    session.execute("MATCH (a:Account) RETURN a.owner")
    database.execute(
        "SELECT g.src FROM GRAPH_TABLE(bank MATCH (a:Account) "
        "COLUMNS (a.owner AS src)) AS g"
    )
    assert len(telemetry.worklog) == 3
    engines = {record.engine for record in telemetry.worklog.entries()}
    assert engines == {"gql", "sql"}
    # Same GQL shape twice → one fingerprint with count 2.
    gql_records = [r for r in telemetry.worklog.entries() if r.engine == "gql"]
    assert gql_records[0].fingerprint == gql_records[1].fingerprint
    assert (
        telemetry.queries_total.value(
            engine="gql", fingerprint=gql_records[0].fingerprint
        )
        == 2
    )
    validate_document(telemetry.to_dict())
