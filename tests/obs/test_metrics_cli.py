"""CLI surface for workload telemetry, plus the gql/sql --stats parity audit."""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs import validate_document

GQL_QUERY = "MATCH (a:Account)-[t:Transfer]->(b) RETURN a.owner, b.owner"
SQL_QUERY = (
    "SELECT g.src FROM GRAPH_TABLE(figure1 "
    "MATCH (a:Account)-[t:Transfer]->(b) COLUMNS (a.owner AS src)) AS g"
)


def test_gql_metrics_out_json(tmp_path, capsys):
    out = tmp_path / "metrics.json"
    assert cli_main(["gql", GQL_QUERY, "--metrics-out", str(out)]) == 0
    document = json.loads(out.read_text(encoding="utf-8"))
    assert validate_document(document) == "repro.metrics/v1"
    (entry,) = document["worklog"]
    assert entry["engine"] == "gql"
    assert entry["rows"] == 8
    assert entry["plan"]  # autotraced run captured the planner line


def test_sql_metrics_out_prometheus(tmp_path, capsys):
    out = tmp_path / "metrics.prom"
    assert cli_main(["sql", SQL_QUERY, "--metrics-out", str(out)]) == 0
    text = out.read_text(encoding="utf-8")
    assert "# TYPE repro_query_latency_ms histogram" in text
    assert 'repro_queries_total{engine="sql",fingerprint="' in text
    assert text.endswith("\n")


def test_gql_dml_mutation_footer_and_metrics(tmp_path, capsys):
    out = tmp_path / "metrics.prom"
    assert cli_main(
        ["gql", "INSERT (:Account {owner: 'newbie'})", "--metrics-out", str(out)]
    ) == 0
    assert "-- mutations: nodes_created=1 (commit)" in capsys.readouterr().out
    text = out.read_text(encoding="utf-8")
    assert 'repro_mutations_total{engine="gql",op="nodes_created"} 1' in text
    assert 'repro_transactions_total{engine="gql",outcome="commit"} 1' in text


def test_gql_save_writes_mutated_graph(tmp_path, capsys):
    out = tmp_path / "after.json"
    assert cli_main(
        ["gql", "INSERT (:Account {owner: 'saved'})", "--save", str(out)]
    ) == 0
    document = json.loads(out.read_text(encoding="utf-8"))
    assert any(
        node["properties"].get("owner") == "saved" for node in document["nodes"]
    )


def test_slow_ms_controls_trace_capture(tmp_path):
    out = tmp_path / "metrics.json"
    assert cli_main(
        ["gql", GQL_QUERY, "--metrics-out", str(out), "--slow-ms", "0"]
    ) == 0
    (entry,) = json.loads(out.read_text(encoding="utf-8"))["worklog"]
    assert entry["slow"] and entry["trace"]["schema"] == "repro.trace/v1"

    assert cli_main(
        ["gql", GQL_QUERY, "--metrics-out", str(out), "--slow-ms", "1e9"]
    ) == 0
    (entry,) = json.loads(out.read_text(encoding="utf-8"))["worklog"]
    assert not entry["slow"] and entry["trace"] is None


def test_metrics_out_composes_with_analyze(tmp_path, capsys):
    out = tmp_path / "metrics.json"
    assert cli_main(["sql", SQL_QUERY, "--analyze", "--metrics-out", str(out)]) == 0
    document = json.loads(out.read_text(encoding="utf-8"))
    assert validate_document(document) == "repro.metrics/v1"
    (entry,) = document["worklog"]
    assert entry["engine"] == "sql"


def test_metrics_subcommand_summary(tmp_path, capsys):
    out = tmp_path / "metrics.json"
    cli_main(["gql", GQL_QUERY, "--metrics-out", str(out), "--slow-ms", "0"])
    capsys.readouterr()
    assert cli_main(["metrics", str(out), "--slow"]) == 0
    output = capsys.readouterr().out
    assert "top 1 fingerprint(s) by total" in output
    assert "MATCH (a : Account)" in output  # normalized example query
    assert "1 slow quer(ies) in the log" in output


def test_metrics_subcommand_rejects_non_metrics_json(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "repro.trace/v1"}), encoding="utf-8")
    assert cli_main(["metrics", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_metrics_subcommand_missing_file(capsys):
    assert cli_main(["metrics", "/no/such/file.json"]) == 1
    assert "error:" in capsys.readouterr().err


def test_obs_validator_autodetects_metrics_and_trace(tmp_path, capsys):
    """``python -m repro.obs FILE`` dispatches on the schema tag."""
    from repro.obs.schema import main as schema_main

    metrics = tmp_path / "metrics.json"
    trace = tmp_path / "trace.json"
    cli_main(["gql", GQL_QUERY, "--metrics-out", str(metrics)])
    cli_main(["gql", GQL_QUERY, "--trace-json", str(trace)])
    capsys.readouterr()
    assert schema_main([str(metrics), str(trace)]) == 0
    output = capsys.readouterr().out
    assert "ok (repro.metrics/v1)" in output
    assert "ok (repro.trace/v1)" in output


# -- surface parity: `repro sql --stats` vs `repro gql --stats` -------------


def _stats_footer(capsys):
    lines = capsys.readouterr().out.splitlines()
    return {
        prefix: next((l for l in lines if l.startswith(prefix)), None)
        for prefix in ("-- stats:", "-- plan:", "-- storage:")
    }


@pytest.mark.parametrize(
    "argv",
    [["gql", GQL_QUERY, "--stats"], ["sql", SQL_QUERY, "--stats"]],
    ids=["gql", "sql"],
)
def test_stats_surface_parity(argv, capsys):
    """Both hosts emit the same --stats footer: counters+ms, plan, storage."""
    assert cli_main(argv) == 0
    footer = _stats_footer(capsys)
    assert footer["-- stats:"] is not None
    assert " ms" in footer["-- stats:"]
    assert "matcher steps" in footer["-- stats:"]
    assert "delivered rows" in footer["-- stats:"]
    assert footer["-- plan:"] is not None
    assert "anchor" in footer["-- plan:"]
    assert footer["-- storage:"] is not None
    assert "columnar snapshot" in footer["-- storage:"]
