"""The metrics registry: semantics, exports, and thread safety."""

import json
import threading

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    log_buckets,
    summarize_fingerprints,
)
from repro.obs.schema import SchemaError, validate_document, validate_metrics_document


# -- families ---------------------------------------------------------------


def test_counter_accumulates_per_labelset():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "help", ("engine",))
    counter.inc(engine="gql")
    counter.inc(2, engine="gql")
    counter.inc(engine="sql")
    assert counter.value(engine="gql") == 3
    assert counter.value(engine="sql") == 1
    assert counter.value(engine="gpml") == 0


def test_counter_rejects_decrease_and_bad_labels():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "help", ("engine",))
    with pytest.raises(ValueError):
        counter.inc(-1, engine="gql")
    with pytest.raises(ValueError):
        counter.inc(mode="gql")


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec()
    assert gauge.value() == 6


def test_none_label_value_becomes_unknown():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "help", ("fingerprint",))
    counter.inc(fingerprint=None)
    assert counter.value(fingerprint="unknown") == 1


def test_reregistration_returns_same_family_or_raises():
    registry = MetricsRegistry()
    first = registry.counter("c_total", "help", ("engine",))
    assert registry.counter("c_total", "help", ("engine",)) is first
    with pytest.raises(ValueError):
        registry.counter("c_total", "help", ("other",))
    with pytest.raises(ValueError):
        registry.gauge("c_total")


def test_log_buckets_geometric():
    assert log_buckets(0.05, 2, 4) == (0.05, 0.1, 0.2, 0.4)
    with pytest.raises(ValueError):
        log_buckets(0, 2, 4)
    with pytest.raises(ValueError):
        log_buckets(1, 1, 4)


def test_histogram_buckets_and_quantiles():
    registry = MetricsRegistry()
    histogram = registry.histogram("h_ms", "help", ("engine",), buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 0.7, 5.0, 50.0, 5000.0):
        histogram.observe(value, engine="gql")
    sample = histogram.sample(engine="gql")
    assert sample.count == 5
    assert sample.sum == pytest.approx(5056.2)
    assert sample.bucket_counts == [2, 1, 1, 1]  # incl. the +Inf slot
    # rank 2.5 of 5 falls in the second bucket (cumulative 2 then 3).
    assert sample.quantile(0.5) == 10.0
    assert sample.quantile(0.25) == 1.0
    # +Inf observations saturate to the largest finite bound.
    assert sample.quantile(1.0) == 100.0
    assert histogram.sample(engine="sql") is None


def test_histogram_rejects_unsorted_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("h", buckets=(10.0, 1.0))


# -- exports ----------------------------------------------------------------


def _populated_registry():
    registry = MetricsRegistry()
    counter = registry.counter("repro_queries_total", "Queries.", ("engine", "fingerprint"))
    counter.inc(engine="gql", fingerprint="abc")
    counter.inc(3, engine="sql", fingerprint="def")
    histogram = registry.histogram(
        "repro_query_latency_ms", "Latency.", ("engine", "fingerprint"),
        buckets=(1.0, 10.0),
    )
    histogram.observe(0.5, engine="gql", fingerprint="abc")
    histogram.observe(500.0, engine="gql", fingerprint="abc")
    registry.gauge("repro_worklog_size", "Size.").set(2)
    return registry


def test_to_dict_round_trips_schema_validation():
    document = _populated_registry().to_dict()
    # JSON round trip: the document must be plain-JSON serializable.
    document = json.loads(json.dumps(document))
    validate_metrics_document(document)
    assert validate_document(document) == "repro.metrics/v1"
    by_name = {metric["name"]: metric for metric in document["metrics"]}
    histogram = by_name["repro_query_latency_ms"]
    assert histogram["buckets"] == [1.0, 10.0]
    (sample,) = histogram["samples"]
    assert sample["bucket_counts"] == [1, 0, 1]
    assert sample["count"] == 2


def test_schema_rejects_corrupt_histogram():
    document = _populated_registry().to_dict()
    document["metrics"][0]["samples"][0]["value"] = "not-a-number"
    with pytest.raises(SchemaError):
        validate_metrics_document(document)


def test_schema_rejects_bucket_count_mismatch():
    document = _populated_registry().to_dict()
    by_name = {metric["name"]: metric for metric in document["metrics"]}
    by_name["repro_query_latency_ms"]["samples"][0]["bucket_counts"] = [1]
    with pytest.raises(SchemaError):
        validate_metrics_document(document)


def test_prometheus_rendering():
    text = _populated_registry().render_prometheus()
    lines = text.splitlines()
    assert "# TYPE repro_queries_total counter" in lines
    assert 'repro_queries_total{engine="sql",fingerprint="def"} 3' in lines
    # Cumulative buckets with a final +Inf equal to _count.
    assert (
        'repro_query_latency_ms_bucket{engine="gql",fingerprint="abc",le="1"} 1'
        in lines
    )
    assert (
        'repro_query_latency_ms_bucket{engine="gql",fingerprint="abc",le="+Inf"} 2'
        in lines
    )
    assert 'repro_query_latency_ms_count{engine="gql",fingerprint="abc"} 2' in lines
    assert "repro_worklog_size 2" in lines
    assert text.endswith("\n")


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("c_total", "help", ("q",)).inc(q='say "hi"\nplease')
    text = registry.render_prometheus()
    assert r'c_total{q="say \"hi\"\nplease"} 1' in text


# -- fingerprint summaries --------------------------------------------------


def test_summarize_fingerprints_orders_and_resolves_examples():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_query_latency_ms", "Latency.", ("engine", "fingerprint"),
        buckets=list(LATENCY_BUCKETS_MS),
    )
    for _ in range(3):
        histogram.observe(2.0, engine="gql", fingerprint="aaa")
    histogram.observe(900.0, engine="sql", fingerprint="bbb")
    document = registry.to_dict()
    document["worklog"] = [
        {"fingerprint": "bbb", "query": "MATCH (b)"},
        {"fingerprint": "aaa", "query": "MATCH (a)"},
    ]

    by_total = summarize_fingerprints(document, by="total")
    assert [row["fingerprint"] for row in by_total] == ["bbb", "aaa"]
    assert by_total[0]["query"] == "MATCH (b)"
    assert by_total[1]["count"] == 3

    by_count = summarize_fingerprints(document, by="count")
    assert [row["fingerprint"] for row in by_count] == ["aaa", "bbb"]

    with pytest.raises(ValueError):
        summarize_fingerprints(document, by="nope")


def test_summarize_fingerprints_empty_document():
    assert summarize_fingerprints({"schema": "repro.metrics/v1", "metrics": []}) == []


# -- thread safety ----------------------------------------------------------


def test_registry_is_thread_safe_under_hammering():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "help", ("worker",))
    shared = registry.counter("s_total", "help")
    histogram = registry.histogram("h_ms", "help", ("worker",), buckets=(1.0, 10.0, 100.0))
    workers, iterations = 8, 2000
    barrier = threading.Barrier(workers)
    errors = []

    def hammer(worker_id):
        try:
            barrier.wait()
            label = f"w{worker_id % 2}"  # contend on shared labelsets
            for i in range(iterations):
                counter.inc(worker=label)
                shared.inc()
                histogram.observe(float(i % 200), worker=label)
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(n,)) for n in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert shared.value() == workers * iterations
    assert counter.value(worker="w0") + counter.value(worker="w1") == workers * iterations
    total_observations = sum(
        histogram.sample(worker=label).count for label in ("w0", "w1")
    )
    assert total_observations == workers * iterations
    for label in ("w0", "w1"):
        sample = histogram.sample(worker=label)
        assert sum(sample.bucket_counts) == sample.count
