"""EXPLAIN ANALYZE end-to-end on all three surfaces, plus the CLI flags."""

import json

import pytest

from repro.cli import main as cli_main
from repro.gpml.explain import explain_analyze
from repro.gpml.streaming import PipelineStats
from repro.gql import GqlSession
from repro.obs import validate_trace_document
from repro.pgq.tabular import tabular_representation
from repro.sql import Database

FRAUD_GQL = (
    "MATCH (a:Account WHERE a.isBlocked='no')-[:isLocatedIn]->"
    "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
    "(b:Account WHERE b.isBlocked='yes'), "
    "TRAIL p = (a)-[:Transfer]->+(b) "
    "RETURN DISTINCT a.owner AS A, b.owner AS B ORDER BY A"
)


@pytest.fixture()
def db(fig1):
    database = Database()
    database.register_graph("figure1", fig1)
    for name, table in tabular_representation(fig1).items():
        database.register_table(name, table)
    return database


# ----------------------------------------------------------------------
# GPML core
# ----------------------------------------------------------------------
def test_gpml_explain_analyze_reports_actuals(fig1):
    report = explain_analyze(fig1, "MATCH (a:Account)-[t:Transfer]->(b:Account)")
    assert report.startswith("EXPLAIN ANALYZE (gpml)")
    assert "actual: 8 row(s)" in report
    assert "search" in report and "steps=" in report and "time=" in report
    assert "anchor:" in report
    assert "est candidates=" in report and "actual=" in report


def test_gpml_explain_analyze_reports_frontier_counters(fig1):
    from repro.gpml.matcher import MatcherConfig

    query = "MATCH (a:Account)-[t:Transfer]->(b:Account)"
    report = explain_analyze(fig1, query, config=MatcherConfig(use_columnar=True))
    # The chain query takes the columnar frontier: the search span
    # carries frontier sizes and the vectorized-filter selectivity.
    assert "engine: columnar" in report
    assert "frontier_slices=" in report
    assert "frontier_entries=" in report
    assert "frontier_survivors=" in report
    assert "vector selectivity=" in report

    oracle = explain_analyze(fig1, query, config=MatcherConfig(use_columnar=False))
    assert "engine: columnar" not in oracle
    assert "frontier_entries=" not in oracle


# ----------------------------------------------------------------------
# GQL host
# ----------------------------------------------------------------------
def test_gql_explain_analyze_fraud_query(fig1):
    session = GqlSession(fig1)
    stats = PipelineStats.traced(query=FRAUD_GQL, engine="gql")
    report = session.explain_analyze(FRAUD_GQL, stats=stats)

    assert report.startswith("EXPLAIN ANALYZE (gql)")
    assert "actual: 2 record(s)" in report
    # one block per pipeline stage, statements before RETURN
    assert report.index("statement #1") < report.index("RETURN")
    assert "hash-join build" in report and "peak=" in report
    # estimated-vs-actual cardinality on anchored searches
    assert "anchor: left via property index Account(isBlocked='no')" in report
    assert "est rows=" in report
    # the run really executed: counters populated, results correct
    assert stats.steps > 0 and stats.rows == 2
    records = session.execute(FRAUD_GQL)
    assert [(r["A"], r["B"]) for r in records] == [
        ("Aretha", "Jay"), ("Dave", "Jay"),
    ]


def test_gql_explain_analyze_matches_flat_counters(fig1):
    session = GqlSession(fig1)
    query = (
        "MATCH (a:Account)-[:Transfer]->(b:Account) "
        "MATCH (b)-[:Transfer]->(c:Account) "
        "RETURN a.owner AS src, c.owner AS dst"
    )
    stats = PipelineStats.traced()
    session.explain_analyze(query, stats=stats)
    assert stats.trace.total_steps() == stats.steps
    delivered = stats.trace.find("RETURN").rows_out
    assert delivered == stats.rows


# ----------------------------------------------------------------------
# SQL host
# ----------------------------------------------------------------------
def test_sql_explain_analyze_method(db):
    stats = PipelineStats.traced(engine="sql")
    report = db.explain_analyze(
        "SELECT A FROM GRAPH_TABLE(figure1 "
        "MATCH (a:Account WHERE a.isBlocked='no')-[t:Transfer]->(b:Account) "
        "COLUMNS (a.owner AS A)) FETCH FIRST 3 ROWS ONLY",
        stats=stats,
    )
    assert report.startswith("EXPLAIN ANALYZE (sql)")
    assert "actual: 3 row(s)" in report
    assert "graph_table scan figure1" in report
    # engine stage spans nest under the scan operator
    assert "search" in report and "reduce + dedup" in report
    assert "est candidates=" in report
    # pushed row budget is visible as an event
    assert "budget_pushdown" in report
    assert stats.rows == 3


def test_sql_explain_analyze_statement_form(db):
    table = db.execute(
        "EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM GRAPH_TABLE(figure1 "
        "MATCH (a:Account)-[t:Transfer]->(b:Account) COLUMNS (a.owner AS A))"
    )
    lines = [row[0] for row in table.rows]
    assert lines[0] == "EXPLAIN ANALYZE (sql)"
    assert any("aggregate" in line and "rows=1" in line for line in lines)
    assert any("peak=" in line for line in lines)


def test_sql_plain_explain_stays_static(db):
    table = db.execute(
        "EXPLAIN SELECT A FROM GRAPH_TABLE(figure1 "
        "MATCH (a:Account) COLUMNS (a.owner AS A))"
    )
    lines = [row[0] for row in table.rows]
    assert not any("rows=" in line or "time=" in line for line in lines)


def test_sql_explain_analyze_rejects_non_select(db):
    from repro.errors import SqlError

    with pytest.raises(SqlError):
        db.explain_analyze("CREATE PROPERTY GRAPH g2 NODE TABLES (accounts)")


# ----------------------------------------------------------------------
# CLI: --analyze / --trace-json / --stats wall time + plan line
# ----------------------------------------------------------------------
def test_cli_gql_analyze_and_trace_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = cli_main([
        "gql",
        "MATCH (a:Account)-[:Transfer]->(b:Account) "
        "RETURN a.owner AS src LIMIT 3",
        "--analyze", "--stats", "--trace-json", str(out),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "EXPLAIN ANALYZE (gql)" in printed
    assert "-- stats:" in printed and " ms" in printed
    assert "-- plan:" in printed and "anchor" in printed
    document = json.loads(out.read_text(encoding="utf-8"))
    validate_trace_document(document)
    assert document["engine"] == "gql"


def test_cli_sql_analyze_and_trace_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = cli_main([
        "sql",
        "SELECT A FROM GRAPH_TABLE(figure1 "
        'MATCH (a:Account WHERE a.isBlocked="no") COLUMNS (a.owner AS A)) '
        "LIMIT 2",
        "--analyze", "--stats", "--trace-json", str(out),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "EXPLAIN ANALYZE (sql)" in printed
    assert "-- stats:" in printed and "delivered rows" in printed
    document = json.loads(out.read_text(encoding="utf-8"))
    validate_trace_document(document)
    assert document["engine"] == "sql"


def test_cli_stats_reports_wall_time_without_analyze(capsys):
    code = cli_main([
        "gql",
        "MATCH (a:Account) RETURN a.owner AS owner",
        "--stats",
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "(6 record(s))" in printed
    assert "-- stats: " in printed
    stats_line = next(l for l in printed.splitlines() if l.startswith("-- stats:"))
    assert stats_line.rstrip().endswith("ms")


def test_cli_stats_reports_storage_line(capsys, monkeypatch):
    # The columnar default must be on for this run, whatever the outer
    # environment (the oracle-mode CI job sets REPRO_DISABLE_COLUMNAR).
    monkeypatch.delenv("REPRO_DISABLE_COLUMNAR", raising=False)
    code = cli_main([
        "gql",
        "MATCH (a:Account)-[t:Transfer]->(b:Account) RETURN a.owner AS owner",
        "--stats",
    ])
    assert code == 0
    printed = capsys.readouterr().out
    storage = next(l for l in printed.splitlines() if l.startswith("-- storage:"))
    # The chain query built (or reused) a columnar snapshot.
    assert "columnar snapshot" in storage
    assert "miss(es)" in storage and "hit(s)" in storage
    assert "0 miss(es), 0 hit(s)" not in storage


def test_cli_no_columnar_runs_on_oracle(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_DISABLE_COLUMNAR", raising=False)
    query = "MATCH (a:Account)-[t:Transfer]->(b:Account) RETURN a.owner AS owner"
    for extra in ([], ["--no-columnar"]):
        code = cli_main(["gql", query, "--stats", "--analyze", *extra])
        assert code == 0
    outputs = capsys.readouterr().out.split("EXPLAIN ANALYZE (gql)")
    columnar_run, oracle_run = outputs[1], outputs[2]
    assert "engine: columnar" in columnar_run
    assert "engine: columnar" not in oracle_run
    # Identical matcher counters (wall time aside): step-equivalent engines.
    def counters(text):
        line = next(l for l in text.splitlines() if l.startswith("-- stats:"))
        return line.rsplit(",", 1)[0]

    assert counters(columnar_run) == counters(oracle_run)


def test_cli_sql_no_columnar(capsys):
    query = (
        "SELECT src FROM GRAPH_TABLE(figure1 "
        "MATCH (a:Account)-[t:Transfer]->(b:Account) "
        "COLUMNS (a.owner AS src))"
    )
    code = cli_main(["sql", query, "--stats", "--no-columnar"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "-- stats: " in printed
    storage = next(l for l in printed.splitlines() if l.startswith("-- storage:"))
    assert "0 miss(es), 0 hit(s)" in storage  # oracle mode: no snapshot
