"""The perf-regression gate: reporting.py --compare semantics.

Verifies the gate against the *committed* trajectory
(``BENCH_observability.json``): the real columnar-vs-baseline entry pair
must pass (columnar got faster everywhere), and an injected 10x slowdown
must fail.  Timing-free — the gate logic is pure arithmetic over
recorded entries.
"""

import copy
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent.parent
_BENCHMARKS = str(REPO / "benchmarks")
if _BENCHMARKS not in sys.path:
    sys.path.insert(0, _BENCHMARKS)

import reporting  # noqa: E402


@pytest.fixture(scope="module")
def trajectory():
    return json.loads((REPO / "BENCH_observability.json").read_text(encoding="utf-8"))


def _entry(trajectory, label):
    return next(e for e in trajectory["entries"] if e["label"] == label)


def test_committed_trajectory_passes_the_gate(trajectory):
    baseline = _entry(trajectory, "baseline")
    columnar = _entry(trajectory, "columnar")
    diffs, regressions = reporting.compare_entries(baseline, columnar)
    assert len(diffs) == len(columnar["results"])
    assert regressions == []


def test_injected_regression_fails_the_gate(trajectory):
    baseline = _entry(trajectory, "baseline")
    slowed = copy.deepcopy(_entry(trajectory, "columnar"))
    victim = max(slowed["results"], key=lambda r: r["wall_ms"])
    victim["wall_ms"] = victim["wall_ms"] * 10
    diffs, regressions = reporting.compare_entries(baseline, slowed)
    assert [d["name"] for d in regressions] == [victim["name"]]
    assert regressions[0]["regressed"]
    assert regressions[0]["ratio"] > 1.5


def test_epsilon_shields_fast_queries():
    baseline = {"results": [{"name": "q", "wall_ms": 0.4}]}
    # 5x slower but still only 2ms: inside the absolute slack.
    entry = {"results": [{"name": "q", "wall_ms": 2.0}]}
    _, regressions = reporting.compare_entries(
        baseline, entry, threshold=1.5, epsilon_ms=25.0
    )
    assert regressions == []
    # With the slack removed the same ratio trips the gate.
    _, regressions = reporting.compare_entries(
        baseline, entry, threshold=1.5, epsilon_ms=0.0
    )
    assert [d["name"] for d in regressions] == ["q"]


def test_unknown_queries_are_skipped():
    baseline = {"results": [{"name": "old", "wall_ms": 1.0}]}
    entry = {"results": [{"name": "new", "wall_ms": 100.0}]}
    diffs, regressions = reporting.compare_entries(baseline, entry)
    assert diffs == [] and regressions == []


def test_main_gate_exit_codes(tmp_path):
    """End-to-end at tiny scale: append + compare passes, injected fails."""
    out = tmp_path / "bench.json"
    scale = ["--accounts", "300", "--transfers", "600"]
    assert reporting.main(scale + ["--label", "base", "--out", str(out)]) == 0
    assert (
        reporting.main(
            scale
            + [
                "--label", "check", "--out", str(out), "--append",
                "--compare", "base", "--fail-threshold", "1000.0",
            ]
        )
        == 0
    )
    # Missing baseline label → exit 2.
    assert (
        reporting.main(
            scale
            + ["--label", "x", "--out", str(out), "--append", "--compare", "nope"]
        )
        == 2
    )
    # Inject a regression into the stored baseline, then compare with a
    # tight threshold and no slack: the real run must read as 1000x+.
    document = json.loads(out.read_text(encoding="utf-8"))
    base_entry = next(e for e in document["entries"] if e["label"] == "base")
    for result in base_entry["results"]:
        result["wall_ms"] = result["wall_ms"] / 10_000.0
    out.write_text(json.dumps(document), encoding="utf-8")
    assert (
        reporting.main(
            scale
            + [
                "--label", "slow", "--out", str(out), "--append",
                "--compare", "base", "--fail-threshold", "1.5",
                "--fail-epsilon-ms", "0.0",
            ]
        )
        == 1
    )


def test_main_prom_out_writes_snapshot(tmp_path):
    out = tmp_path / "bench.json"
    prom = tmp_path / "bench.prom"
    assert (
        reporting.main(
            [
                "--accounts", "300", "--transfers", "600",
                "--out", str(out), "--prom-out", str(prom),
            ]
        )
        == 0
    )
    text = prom.read_text(encoding="utf-8")
    assert "# TYPE repro_queries_total counter" in text
    # One labelset per suite query (distinct fingerprints).
    from repro.datasets import figure1_graph

    suite_size = len(reporting.build_suite(figure1_graph()))
    lines = [l for l in text.splitlines() if l.startswith("repro_queries_total{")]
    assert len(lines) == suite_size
