"""Unit tests for paths (walks), including the paper's examples."""

import pytest

from repro.errors import PathError
from repro.graph import Path


class TestConstruction:
    def test_single_node_path(self, fig1):
        p = Path.single_node(fig1, "a1")
        assert p.length == 0
        assert p.source_id == p.target_id == "a1"

    def test_paper_example_path(self, fig1):
        # path(c1,li1,a1,t1,a3,hp3,p2): li1 traversed in reverse, t1
        # forward, hp3 undirected (Section 2).
        p = Path(fig1, ["c1", "a1", "a3", "p2"], ["li1", "t1", "hp3"])
        assert p.length == 3
        assert str(p) == "path(c1,li1,a1,t1,a3,hp3,p2)"

    def test_arity_mismatch(self, fig1):
        with pytest.raises(PathError):
            Path(fig1, ["a1", "a3"], [])

    def test_disconnected_edge_rejected(self, fig1):
        with pytest.raises(PathError):
            Path(fig1, ["a1", "a2"], ["t1"])  # t1 connects a1 and a3

    def test_unknown_elements_rejected(self, fig1):
        with pytest.raises(PathError):
            Path(fig1, ["zzz"], [])
        with pytest.raises(PathError):
            Path(fig1, ["a1", "a3"], ["zzz"])

    def test_empty_path_rejected(self, fig1):
        with pytest.raises(PathError):
            Path(fig1, [], [])

    def test_from_element_ids(self, fig1):
        p = Path.from_element_ids(fig1, ("a6", "t5", "a3", "t2", "a2"))
        assert p.node_ids == ("a6", "a3", "a2")
        assert p.edge_ids == ("t5", "t2")
        with pytest.raises(PathError):
            Path.from_element_ids(fig1, ("a6", "t5"))


class TestRestrictorPredicates:
    def test_trail_and_acyclic(self, fig1):
        # The paper's third TRAIL result repeats node a3 but no edge.
        p = Path.from_element_ids(
            fig1, ("a6", "t5", "a3", "t7", "a5", "t8", "a1", "t1", "a3", "t2", "a2")
        )
        assert p.is_trail()
        assert not p.is_acyclic()
        assert not p.is_simple()

    def test_non_trail(self, fig1):
        # Traverses the t4/t5/t2/t3 cycle twice (Section 5.1).
        p = Path.from_element_ids(
            fig1,
            ("a6", "t5", "a3", "t2", "a2", "t3", "a4", "t4",
             "a6", "t5", "a3", "t2", "a2"),
        )
        assert not p.is_trail()

    def test_simple_allows_closing_cycle(self, fig1):
        p = Path.from_element_ids(
            fig1, ("a3", "t7", "a5", "t8", "a1", "t1", "a3")
        )
        assert p.is_simple()
        assert not p.is_acyclic()
        assert p.is_trail()

    def test_zero_length_is_everything(self, fig1):
        p = Path.single_node(fig1, "a1")
        assert p.is_trail() and p.is_acyclic() and p.is_simple()


class TestOperations:
    def test_concat(self, fig1):
        p1 = Path.from_element_ids(fig1, ("a6", "t5", "a3"))
        p2 = Path.from_element_ids(fig1, ("a3", "t2", "a2"))
        joined = p1.concat(p2)
        assert joined.element_ids == ("a6", "t5", "a3", "t2", "a2")

    def test_concat_requires_shared_endpoint(self, fig1):
        p1 = Path.from_element_ids(fig1, ("a6", "t5", "a3"))
        p2 = Path.from_element_ids(fig1, ("a2", "t3", "a4"))
        with pytest.raises(PathError):
            p1.concat(p2)

    def test_reverse(self, fig1):
        p = Path.from_element_ids(fig1, ("a6", "t5", "a3", "t2", "a2"))
        assert p.reverse().element_ids == ("a2", "t2", "a3", "t5", "a6")
        assert p.reverse().reverse() == p

    def test_prefix(self, fig1):
        p = Path.from_element_ids(fig1, ("a6", "t5", "a3", "t2", "a2"))
        assert p.prefix(1).element_ids == ("a6", "t5", "a3")
        assert p.prefix(0).length == 0
        with pytest.raises(PathError):
            p.prefix(3)

    def test_cost(self, fig1):
        p = Path.from_element_ids(fig1, ("a6", "t5", "a3", "t2", "a2"))
        assert p.cost("amount") == 20_000_000
        assert p.cost("nonexistent", default=2.0) == 4.0

    def test_equality_and_hash(self, fig1):
        p1 = Path.from_element_ids(fig1, ("a6", "t5", "a3"))
        p2 = Path.from_element_ids(fig1, ("a6", "t5", "a3"))
        assert p1 == p2
        assert hash(p1) == hash(p2)
        assert p1 != Path.from_element_ids(fig1, ("a3", "t2", "a2"))

    def test_ordering_by_length_then_ids(self, fig1):
        short = Path.from_element_ids(fig1, ("a6", "t5", "a3"))
        long = Path.from_element_ids(fig1, ("a6", "t5", "a3", "t2", "a2"))
        assert short < long

    def test_iteration_and_len(self, fig1):
        p = Path.from_element_ids(fig1, ("a6", "t5", "a3"))
        assert list(p) == ["a6", "t5", "a3"]
        assert len(p) == 1

    def test_nodes_edges_handles(self, fig1):
        p = Path.from_element_ids(fig1, ("a6", "t5", "a3"))
        assert [n.id for n in p.nodes] == ["a6", "a3"]
        assert [e.id for e in p.edges] == ["t5"]
        assert p.source.id == "a6" and p.target.id == "a3"
