"""The version-bump contract: one bump per logical mutation.

Every cache in the system (columnar snapshot, statistics catalog,
incidence memo, plan candidates) keys its validity on
``PropertyGraph.version``, so the contract is load-bearing: a mutation
that *skips* a bump poisons caches with stale data, and a mutation that
*double*-bumps (or a no-op that bumps at all) churns caches for nothing.
These tests pin the contract mutation by mutation, including the two
composite cases — ``remove_node`` cascades one bump per removed incident
edge plus one for the node, and a rolled-back transaction restores the
pre-transaction version so cache keys cannot alias across the rollback.
"""

import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder
from repro.graph.model import PropertyGraph


def build_graph() -> PropertyGraph:
    g = PropertyGraph("contract")
    g.add_node("a", labels=["A"], properties={"v": 1})
    g.add_node("b", labels=["B"], properties={"v": 2})
    g.add_edge("e", "a", "b", labels=["E"], properties={"w": 1})
    return g


def bumps(graph, action) -> int:
    before = graph.version
    action()
    return graph.version - before


class TestSingleBumps:
    def test_add_node(self):
        g = build_graph()
        assert bumps(g, lambda: g.add_node("c")) == 1

    def test_add_edge(self):
        g = build_graph()
        assert bumps(g, lambda: g.add_edge("f", "a", "b")) == 1

    def test_set_property_new(self):
        g = build_graph()
        assert bumps(g, lambda: g.set_property("a", "x", 9)) == 1

    def test_set_property_overwrite(self):
        g = build_graph()
        assert bumps(g, lambda: g.set_property("a", "v", 9)) == 1

    def test_set_property_on_edge(self):
        g = build_graph()
        assert bumps(g, lambda: g.set_property("e", "w", 2)) == 1

    def test_remove_property(self):
        g = build_graph()
        assert bumps(g, lambda: g.remove_property("a", "v")) == 1

    def test_set_labels(self):
        g = build_graph()
        assert bumps(g, lambda: g.set_labels("a", ["A", "X"])) == 1

    def test_remove_edge(self):
        g = build_graph()
        assert bumps(g, lambda: g.remove_edge("e")) == 1

    def test_remove_isolated_node(self):
        g = build_graph()
        g.remove_edge("e")
        assert bumps(g, lambda: g.remove_node("a")) == 1


class TestNoOpsDoNotBump:
    """A mutation that changes nothing must not invalidate every cache."""

    def test_set_property_same_value(self):
        g = build_graph()
        assert bumps(g, lambda: g.set_property("a", "v", 1)) == 0

    def test_set_property_same_value_different_type(self):
        # 1 == 1.0 but replacing an int with a float is a real change.
        g = build_graph()
        assert bumps(g, lambda: g.set_property("a", "v", 1.0)) == 1

    def test_remove_absent_property(self):
        g = build_graph()
        assert bumps(g, lambda: g.remove_property("a", "nope")) == 0

    def test_set_labels_same_set(self):
        g = build_graph()
        assert bumps(g, lambda: g.set_labels("a", ["A"])) == 0


class TestCascades:
    def test_remove_node_bumps_once_per_removed_element(self):
        g = build_graph()
        g.add_edge("f", "b", "a")
        g.add_edge("self", "a", "a")
        # removing `a` cascades e, f and the self-loop, then the node
        assert bumps(g, lambda: g.remove_node("a")) == 4

    def test_builder_passthroughs_bump_once(self):
        builder = GraphBuilder("built").node("n1", "A").node("n2", "B")
        builder.directed("e1", "n1", "n2", "E")
        g = builder._graph
        assert bumps(g, lambda: builder.set_property("n1", "v", 5)) == 1
        assert bumps(g, lambda: builder.set_labels("n1", "A", "Z")) == 1
        assert bumps(g, lambda: builder.remove_edge("e1")) == 1
        assert bumps(g, lambda: builder.remove_node("n2")) == 1


class TestTransactions:
    def test_rollback_restores_version(self):
        g = build_graph()
        before = g.version
        txn = g.begin_mutation()
        g.add_node("c")
        g.set_property("a", "v", 99)
        g.remove_edge("e")
        assert g.version == before + 3
        txn.rollback()
        assert g.version == before

    def test_commit_keeps_bumps(self):
        g = build_graph()
        before = g.version
        with g.begin_mutation():
            g.add_node("c")
            g.set_property("c", "v", 1)
        assert g.version == before + 2

    def test_nested_transaction_rejected(self):
        g = build_graph()
        with g.begin_mutation():
            with pytest.raises(GraphError):
                g.begin_mutation()
        # the context manager committed; a fresh transaction works
        g.begin_mutation().rollback()

    def test_watcher_sees_one_record_per_bump(self):
        g = build_graph()
        seen = []
        g.add_watcher(seen.extend)
        before = g.version
        g.add_node("c")
        g.set_property("c", "v", 1)
        g.remove_node("c")
        assert g.version - before == len(seen) == 3
        g.remove_watcher(seen.extend)
