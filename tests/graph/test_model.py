"""Unit tests for the property-graph data model (Definition 2.1)."""

import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder, PropertyGraph
from repro.graph.model import IN, OUT, UNDIRECTED
from repro.values import NULL, is_null


@pytest.fixture()
def small():
    g = PropertyGraph("small")
    g.add_node("a", labels=["Account"], properties={"owner": "Ada"})
    g.add_node("b", labels=["Account", "Vip"])
    g.add_node("c")
    g.add_edge("t", "a", "b", labels=["Transfer"], properties={"amount": 5})
    g.add_edge("u", "b", "c", directed=False, labels=["Knows"])
    return g


class TestConstruction:
    def test_counts(self, small):
        assert small.num_nodes == 3
        assert small.num_edges == 2

    def test_duplicate_node_id_rejected(self, small):
        with pytest.raises(GraphError):
            small.add_node("a")

    def test_node_edge_id_spaces_are_disjoint(self, small):
        # Definition 2.1: N and E are disjoint.
        with pytest.raises(GraphError):
            small.add_node("t")
        with pytest.raises(GraphError):
            small.add_edge("a", "a", "b")

    def test_edge_requires_existing_endpoints(self, small):
        with pytest.raises(GraphError):
            small.add_edge("x", "a", "zzz")

    def test_auto_ids_are_fresh(self):
        g = PropertyGraph()
        n1 = g.add_node()
        n2 = g.add_node()
        assert n1.id != n2.id

    def test_multigraph_allowed(self, small):
        # Two distinct edges between the same endpoints (Section 2).
        small.add_edge("t2", "a", "b", labels=["Transfer"])
        assert small.num_edges == 3

    def test_self_loops_allowed(self, small):
        loop = small.add_edge("loop", "a", "a")
        assert loop.is_self_loop
        undirected_loop = small.add_edge("uloop", "a", "a", directed=False)
        assert undirected_loop.is_self_loop


class TestLabelsAndProperties:
    def test_labels(self, small):
        assert small.node("b").labels == frozenset({"Account", "Vip"})
        assert small.node("c").labels == frozenset()
        assert small.edge("t").has_label("Transfer")

    def test_missing_property_is_null(self, small):
        assert is_null(small.node("a").get("nope"))
        assert small.node("a")["owner"] == "Ada"

    def test_set_property(self, small):
        small.set_property("a", "owner", "Grace")
        assert small.node("a")["owner"] == "Grace"

    def test_label_index(self, small):
        assert [n.id for n in small.nodes_with_label("Account")] == ["a", "b"]
        assert [e.id for e in small.edges_with_label("Transfer")] == ["t"]
        assert small.nodes_with_label("Nope") == []

    def test_all_labels(self, small):
        assert small.all_labels() == {"Account", "Vip", "Transfer", "Knows"}


class TestEdges:
    def test_directed_endpoints(self, small):
        t = small.edge("t")
        assert t.is_directed
        assert t.source.id == "a"
        assert t.target.id == "b"
        assert t.endpoint_ids == ("a", "b")

    def test_undirected_has_no_source(self, small):
        u = small.edge("u")
        assert not u.is_directed
        assert u.source is None
        assert u.target is None

    def test_connects_either_role(self, small):
        assert small.edge("t").connects("a", "b")
        assert small.edge("t").connects("b", "a")
        assert not small.edge("t").connects("a", "c")

    def test_other_id(self, small):
        assert small.edge("t").other_id("a") == "b"
        assert small.edge("t").other_id("b") == "a"
        with pytest.raises(GraphError):
            small.edge("t").other_id("c")


class TestIncidences:
    def test_directed_incidences(self, small):
        directions = {(i.edge, i.direction) for i in small.incidences("a")}
        assert ("t", OUT) in directions
        directions_b = {(i.edge, i.direction) for i in small.incidences("b")}
        assert ("t", IN) in directions_b
        assert ("u", UNDIRECTED) in directions_b

    def test_undirected_incidence_both_sides(self, small):
        assert any(i.edge == "u" for i in small.incidences("c"))

    def test_directed_self_loop_gives_out_and_in(self):
        g = PropertyGraph()
        g.add_node("a")
        g.add_edge("loop", "a", "a")
        directions = sorted(i.direction for i in g.incidences("a"))
        assert directions == [IN, OUT]

    def test_undirected_self_loop_single_incidence(self):
        g = PropertyGraph()
        g.add_node("a")
        g.add_edge("loop", "a", "a", directed=False)
        assert len(g.incidences("a")) == 1


class TestRemoval:
    def test_remove_edge(self, small):
        small.remove_edge("t")
        assert not small.has_edge("t")
        assert all(i.edge != "t" for i in small.incidences("a"))

    def test_remove_node_cascades(self, small):
        small.remove_node("b")
        assert not small.has_node("b")
        assert not small.has_edge("t")
        assert not small.has_edge("u")

    def test_remove_unknown(self, small):
        with pytest.raises(GraphError):
            small.remove_edge("zzz")
        with pytest.raises(GraphError):
            small.remove_node("zzz")


class TestHandles:
    def test_equality_by_graph_and_id(self, small):
        assert small.node("a") == small.node("a")
        assert small.node("a") != small.node("b")
        other = PropertyGraph()
        other.add_node("a")
        assert small.node("a") != other.node("a")

    def test_hashable(self, small):
        assert len({small.node("a"), small.node("a"), small.node("b")}) == 2

    def test_element_lookup(self, small):
        from repro.graph.model import Edge, Node

        assert isinstance(small.element("a"), Node)
        assert isinstance(small.element("t"), Edge)
        with pytest.raises(GraphError):
            small.element("zzz")

    def test_contains(self, small):
        assert "a" in small
        assert "t" in small
        assert "zzz" not in small


class TestLabelIndexedIncidences:
    def test_filtering(self, small):
        labelled = small._graph if hasattr(small, "_graph") else small
        incs = labelled.incidences_with_label("b", "Transfer")
        assert [i.edge for i in incs] == ["t"]
        assert labelled.incidences_with_label("b", "Nope") == []

    def test_cache_invalidated_on_add(self, small):
        assert small.incidences_with_label("a", "Transfer")
        small.add_edge("t9", "a", "c", labels=["Transfer"])
        assert len(small.incidences_with_label("a", "Transfer")) == 2

    def test_cache_invalidated_on_remove(self, small):
        assert small.incidences_with_label("a", "Transfer")
        small.remove_edge("t")
        assert small.incidences_with_label("a", "Transfer") == []

    def test_consistent_with_full_scan(self, small):
        for node_id in small.node_ids():
            for label in ("Transfer", "Knows"):
                indexed = small.incidences_with_label(node_id, label)
                scanned = [
                    i for i in small.incidences(node_id)
                    if small.edge(i.edge).has_label(label)
                ]
                assert indexed == scanned

    def test_unknown_node(self, small):
        with pytest.raises(GraphError):
            small.incidences_with_label("zzz", "Transfer")
