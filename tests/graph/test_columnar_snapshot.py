"""Unit tests for the columnar snapshot: caching, CSR layout, scans."""

import pytest

from repro.graph import GraphBuilder
from repro.graph.columnar import (
    DIR_IN,
    DIR_OUT,
    DIR_UNDIRECTED,
    MISSING,
    cached_snapshot,
    snapshot_for,
    storage_stats,
)
from repro.graph.model import IN, OUT, UNDIRECTED


def bank_graph():
    return (
        GraphBuilder("bank")
        .node("a1", "Account", owner="Scott", isBlocked="no", bal=10)
        .node("a2", "Account", owner="Aretha", isBlocked="yes", bal=20)
        .node("a3", "Account", "Vip", owner="Mike", isBlocked="no", bal=10)
        .node("c1", "City", name="Ankh-Morpork")
        .directed("t1", "a1", "a2", "Transfer", amount=100)
        .directed("t2", "a2", "a3", "Transfer", amount=200)
        .directed("t3", "a3", "a3", "Transfer", amount=300)
        .undirected("f1", "a1", "a3", "Friend")
        .undirected("f2", "a2", "a2", "Friend")
        .directed("l1", "a1", "c1", "isLocatedIn")
        .build()
    )


class TestSnapshotCache:
    def test_cached_until_mutation(self):
        g = bank_graph()
        assert cached_snapshot(g) is None  # never builds on its own
        snap = snapshot_for(g)
        assert snapshot_for(g) is snap
        assert cached_snapshot(g) is snap
        g.add_node("a9", labels=["Account"])
        assert cached_snapshot(g) is None  # version bumped → stale
        rebuilt = snapshot_for(g)
        assert rebuilt is not snap
        assert rebuilt.version == g.version

    def test_property_mutation_invalidates(self):
        g = bank_graph()
        snap = snapshot_for(g)
        g.set_property("a1", "isBlocked", "yes")
        assert snapshot_for(g) is not snap
        assert snapshot_for(g).equality_scan("Account", "isBlocked", "yes") == {
            "a1",
            "a2",
        }

    def test_storage_stats_counters(self):
        g = bank_graph()
        before = dict(storage_stats(g))
        snapshot_for(g)
        snapshot_for(g)
        snapshot_for(g)
        after = storage_stats(g)
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 2
        assert after["build_ms"] > before["build_ms"]


class TestCsrLayout:
    def test_entry_order_matches_incidences(self):
        g = bank_graph()
        snap = snapshot_for(g)
        block = snap.csr(None)
        to_model = {DIR_OUT: OUT, DIR_IN: IN, DIR_UNDIRECTED: UNDIRECTED}
        for nid in g.node_ids():
            code = snap.node_code[nid]
            start, end = block.indptr[code], block.indptr[code + 1]
            entries = [
                (
                    block.edge_ids[block.local[k]],
                    snap.node_ids[block.other[k]],
                    to_model[block.dir[k]],
                )
                for k in range(start, end)
            ]
            expected = [(i.edge, i.other, i.direction) for i in g.incidences(nid)]
            assert entries == expected, nid

    def test_label_partition(self):
        g = bank_graph()
        block = snapshot_for(g).csr("Transfer")
        assert sorted(block.edge_ids) == ["t1", "t2", "t3"]
        # Directed self-loop t3 contributes an OUT and an IN slot at a3.
        assert sum(1 for d in block.dir if d == DIR_OUT) == 3
        assert sum(1 for d in block.dir if d == DIR_IN) == 3

    def test_undirected_self_loop_single_entry(self):
        g = bank_graph()
        snap = snapshot_for(g)
        block = snap.csr("Friend")
        code = snap.node_code["a2"]
        start, end = block.indptr[code], block.indptr[code + 1]
        assert end - start == 1  # f2 appears once, not twice
        assert block.dir[start] == DIR_UNDIRECTED

    def test_need_specialization(self):
        g = bank_graph()
        snap = snapshot_for(g)
        out_block = snap.csr("Transfer", "out")
        assert set(out_block.dir) == {DIR_OUT}
        assert len(out_block.other) == 3
        in_block = snap.csr("Transfer", "in")
        assert set(in_block.dir) == {DIR_IN}
        # Specialized blocks see the same edges as the full block.
        assert sorted(out_block.edge_ids) == sorted(in_block.edge_ids)

    def test_specialized_request_reuses_any_block(self):
        g = bank_graph()
        snap = snapshot_for(g)
        full = snap.csr("Transfer", "any")
        assert snap.csr("Transfer", "out") is full  # superset reused

    def test_mixed_direction_label_ignores_need(self):
        g = (
            GraphBuilder("mixed")
            .node("x")
            .node("y")
            .directed("d1", "x", "y", "M")
            .undirected("u1", "x", "y", "M")
            .build()
        )
        block = snapshot_for(g).csr("M", "out")
        # Not all-directed: the generic block is built (and is correct —
        # the matcher's admit check still filters orientations).
        assert DIR_UNDIRECTED in set(block.dir)

    def test_empty_label_block(self):
        g = bank_graph()
        block = snapshot_for(g).csr("NoSuchLabel")
        assert block.edge_ids == []
        assert block.indptr == [0] * (g.num_nodes + 1)


class TestLabelBitsets:
    def test_membership(self):
        g = bank_graph()
        snap = snapshot_for(g)
        bits = snap.node_label_bitset("Account")
        members = {
            nid for nid in g.node_ids() if (bits >> snap.node_code[nid]) & 1
        }
        assert members == {"a1", "a2", "a3"}
        assert snap.node_label_bitset("NoSuchLabel") == 0

    def test_label_members_sorted(self):
        g = bank_graph()
        snap = snapshot_for(g)
        assert snap.label_members_sorted("Account") == ["a1", "a2", "a3"]
        assert snap.label_members_sorted("Nope") == []


class TestScans:
    def test_equality_scan_matches_index_lookup(self):
        g = bank_graph()
        snap = snapshot_for(g)
        cases = [
            ("Account", "isBlocked", "no"),
            ("Account", "isBlocked", "yes"),
            (None, "isBlocked", "no"),
            ("Account", "bal", 10),  # non-string column: generic path
            (None, "bal", 20),
            ("Account", "isBlocked", "absent-value"),
            ("Account", "noSuchProp", "x"),
            ("City", "name", "Ankh-Morpork"),
        ]
        for label, prop, value in cases:
            assert snap.equality_scan(label, prop, value) == set(
                g.index_lookup(label, prop, value, kind="node")
            ), (label, prop, value)

    def test_equality_scan_memoized(self):
        snap = snapshot_for(bank_graph())
        first = snap.equality_scan("Account", "isBlocked", "no")
        assert snap.equality_scan("Account", "isBlocked", "no") is first

    def test_string_column_dictionary(self):
        snap = snapshot_for(bank_graph())
        column = snap.node_column("isBlocked")
        assert column.codes is not None  # all-string → dictionary-encoded
        assert column.codes.count(-1) == 1  # c1 lacks the property
        mixed = snap.node_column("bal")
        assert mixed.codes is None  # int column: no dictionary
        assert mixed.values.count(MISSING) == 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
