"""Unit tests for GraphBuilder, JSON serialization and statistics."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    GraphBuilder,
    graph_from_dict,
    graph_from_json,
    graph_statistics,
    graph_to_dict,
    graph_to_json,
)


class TestBuilder:
    def test_fluent_build(self):
        g = (
            GraphBuilder("demo")
            .node("a", "Account", owner="Scott")
            .node("b", "Account")
            .directed("t", "a", "b", "Transfer", amount=1)
            .undirected("h", "a", "b", "Knows")
            .build()
        )
        assert g.num_nodes == 2 and g.num_edges == 2
        assert g.node("a")["owner"] == "Scott"
        assert not g.edge("h").is_directed

    def test_bulk_nodes(self):
        g = GraphBuilder().nodes("a", "b", "c", labels=("N",)).build()
        assert g.num_nodes == 3
        assert g.node("b").has_label("N")

    def test_builder_single_use(self):
        b = GraphBuilder().node("a")
        b.build()
        with pytest.raises(RuntimeError):
            b.node("b")
        with pytest.raises(RuntimeError):
            b.build()

    def test_duplicate_detection_propagates(self):
        with pytest.raises(GraphError):
            GraphBuilder().node("a").node("a")


class TestSerialization:
    def test_round_trip(self, fig1):
        data = graph_to_dict(fig1)
        clone = graph_from_dict(data)
        assert graph_to_dict(clone) == data

    def test_json_round_trip(self, fig1):
        text = graph_to_json(fig1)
        clone = graph_from_json(text)
        assert graph_to_dict(clone) == graph_to_dict(fig1)

    def test_dict_shape(self, fig1):
        data = graph_to_dict(fig1)
        assert data["name"] == "figure1"
        node_ids = [n["id"] for n in data["nodes"]]
        assert node_ids == sorted(node_ids)
        t1 = next(e for e in data["edges"] if e["id"] == "t1")
        assert t1 == {
            "id": "t1",
            "from": "a1",
            "to": "a3",
            "directed": True,
            "labels": ["Transfer"],
            "properties": {"date": "1/1/2020", "amount": 8_000_000},
        }

    def test_undirected_preserved(self, fig1):
        clone = graph_from_json(graph_to_json(fig1))
        assert not clone.edge("hp1").is_directed

    def test_invalid_json_raises(self):
        with pytest.raises(GraphError):
            graph_from_json("{not json")
        with pytest.raises(GraphError):
            graph_from_json("[1, 2, 3]")


class TestStatistics:
    def test_figure1_statistics(self, fig1):
        stats = graph_statistics(fig1)
        assert stats.num_nodes == 14
        assert stats.num_edges == 22
        assert stats.num_directed_edges == 16  # 8 transfers + 6 li + 2 sip
        assert stats.num_undirected_edges == 6  # hasPhone
        assert stats.num_self_loops == 0
        assert stats.node_label_histogram["Account"] == 6
        assert stats.node_label_histogram["Country"] == 2  # c1 and c2
        assert stats.node_label_histogram["City"] == 1
        assert stats.edge_label_histogram["Transfer"] == 8
        assert stats.max_out_degree >= 2
        assert "14 nodes" in str(stats)

    def test_empty_graph(self):
        from repro.graph import PropertyGraph

        stats = graph_statistics(PropertyGraph())
        assert stats.num_nodes == 0
        assert stats.mean_degree == 0.0
