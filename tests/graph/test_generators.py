"""Unit tests for the synthetic workload generators."""

import pytest

from repro.datasets import (
    chain_graph,
    clique_transfer_graph,
    cycle_graph,
    diamond_chain,
    grid_graph,
    random_transfer_network,
)
from repro.gpml import match


class TestShapes:
    def test_chain(self):
        g = chain_graph(5)
        assert g.num_nodes == 6
        assert g.num_edges == 5
        # exactly one maximal directed walk
        result = match(g, "MATCH (a WHERE a.index = 0)->{5,5}(b)")
        assert len(result) == 1

    def test_cycle(self):
        g = cycle_graph(4)
        assert g.num_nodes == 4 and g.num_edges == 4
        # every node lies on exactly one directed 4-cycle
        result = match(g, "MATCH (a)->{4,4}(b) WHERE SAME(a, b)")
        assert len(result) == 4

    def test_cycle_validates(self):
        with pytest.raises(ValueError):
            cycle_graph(0)

    def test_diamond_chain_has_2_to_k_shortest_paths(self):
        k = 4
        g = diamond_chain(k)
        result = match(
            g,
            f"MATCH ALL SHORTEST p = (a WHERE a.index IS NULL AND SAME(a,a))->*(b)",
        )
        # count source-to-sink paths among all partitions
        paths = [p for p in result.paths() if p.source_id == "s0" and p.target_id == f"s{k}"]
        assert len(paths) == 2**k
        assert all(p.length == 2 * k for p in paths)

    def test_grid(self):
        g = grid_graph(3, 3)
        assert g.num_nodes == 9
        assert g.num_edges == 12  # 2 * 3*2
        # lattice paths corner to corner: C(4,2) = 6
        result = match(
            g,
            "MATCH ALL SHORTEST p = (a WHERE a.x=0 AND a.y=0)->*(b WHERE b.x=2 AND b.y=2)",
        )
        assert len(result) == 6

    def test_clique(self):
        g = clique_transfer_graph(4)
        assert g.num_nodes == 4
        assert g.num_edges == 12


class TestRandomNetwork:
    def test_deterministic_by_seed(self):
        a = random_transfer_network(20, 40, seed=7)
        b = random_transfer_network(20, 40, seed=7)
        from repro.graph import graph_to_dict

        assert graph_to_dict(a) == graph_to_dict(b)

    def test_different_seeds_differ(self):
        from repro.graph import graph_to_dict

        a = random_transfer_network(20, 40, seed=1)
        b = random_transfer_network(20, 40, seed=2)
        assert graph_to_dict(a) != graph_to_dict(b)

    def test_schema_matches_figure1(self):
        g = random_transfer_network(10, 20, seed=3)
        # the paper's queries run unchanged on the synthetic schema
        result = match(g, "MATCH (x:Account WHERE x.isBlocked='no')")
        assert len(result) > 0
        result = match(g, "MATCH (a:Account)-[:isLocatedIn]->(c:City)")
        assert len(result) == 10
        result = match(g, "MATCH (p:Phone)~[:hasPhone]~(a:Account)")
        assert len(result) == 10

    def test_sizes(self):
        g = random_transfer_network(10, 25, seed=0, num_cities=2)
        accounts = len(list(g.nodes_with_label("Account")))
        transfers = len(list(g.edges_with_label("Transfer")))
        assert accounts == 10
        assert transfers == 25
