"""GQL graph outputs: binding subgraphs and match views (Fig. 9, §6.6)."""

import pytest

from repro.gql.graph_output import (
    binding_subgraph,
    execute_match_as_graph,
    result_graph,
)
from repro.gpml import match


class TestBindingSubgraph:
    def test_contains_exactly_the_bound_elements(self, fig1):
        result = match(fig1, "MATCH (x WHERE x.owner='Scott')-[e:Transfer]->(y)")
        sub = binding_subgraph(fig1, result.rows[0])
        assert sorted(sub.node_ids()) == ["a1", "a3"]
        assert sorted(sub.edge_ids()) == ["t1"]

    def test_annotations_record_variables(self, fig1):
        result = match(fig1, "MATCH (x WHERE x.owner='Scott')-[e:Transfer]->(y)")
        sub = binding_subgraph(fig1, result.rows[0])
        assert sub.node("a1")["_bound_to"] == "x"
        assert sub.edge("t1")["_bound_to"] == "e"

    def test_original_properties_preserved(self, fig1):
        result = match(fig1, "MATCH (x WHERE x.owner='Scott')-[e:Transfer]->(y)")
        sub = binding_subgraph(fig1, result.rows[0])
        assert sub.node("a1")["owner"] == "Scott"
        assert sub.edge("t1")["amount"] == 8_000_000
        assert sub.edge("t1").is_directed

    def test_path_elements_included_even_unnamed(self, fig1):
        # anonymous middle elements are part of the binding's subgraph
        result = match(fig1, "MATCH (x WHERE x.owner='Scott')-[:Transfer]->()-[:Transfer]->(z)")
        sub = binding_subgraph(fig1, result.rows[0])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2

    def test_group_variable_elements_annotated(self, fig1):
        result = match(
            fig1, "MATCH (a WHERE a.owner='Scott')-[e:Transfer]->{2,2}(b)"
        )
        sub = binding_subgraph(fig1, result.rows[0])
        for edge in sub.edges():
            assert edge["_bound_to"] == "e"


class TestResultGraph:
    def test_union_over_rows(self, fig1):
        result = match(fig1, "MATCH (x:Account)-[e:Transfer]->(y)")
        view = result_graph(fig1, result)
        assert view.num_edges == 8  # all transfers
        assert view.num_nodes == 6  # all accounts

    def test_view_is_queryable(self, fig1):
        view = execute_match_as_graph(
            fig1,
            "MATCH (x:Account WHERE x.isBlocked='no')-[e:Transfer]->"
            "(y:Account WHERE y.isBlocked='no')",
            name="clean_transfers",
        )
        # a4 (blocked) is excluded from the view entirely
        assert not view.has_node("a4")
        # the view is an ordinary property graph: run GPML on it
        inner = match(view, "MATCH TRAIL p = (a)-[:Transfer]->+(b)")
        assert all("a4" not in p.node_ids for p in inner.paths())

    def test_empty_result_empty_graph(self, fig1):
        view = execute_match_as_graph(fig1, "MATCH (x:Account WHERE x.owner='Nobody')")
        assert view.num_nodes == 0 and view.num_edges == 0

    def test_undirectedness_preserved(self, fig1):
        view = execute_match_as_graph(fig1, "MATCH (p:Phone)~[h:hasPhone]~(a:Account)")
        assert all(not e.is_directed for e in view.edges())
        assert view.num_edges == 6
