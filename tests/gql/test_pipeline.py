"""GQL linear composition: MATCH / OPTIONAL MATCH / LET / FILTER chains.

Covers parsing of the statement list, the join semantics of chained
MATCH (seeded and hash-join modes must agree), OPTIONAL MATCH NULL
padding, LET/FILTER row transforms, correlated WHERE, selectors and KEEP
inside chained statements, cross-statement variable rules, streaming
early termination through the chain, and the EXPLAIN rendering.
"""

import dataclasses

import pytest

from repro.datasets.generators import random_transfer_network
from repro.errors import GpmlSyntaxError, GqlError
from repro.gpml import PipelineStats
from repro.gpml.matcher import MatcherConfig
from repro.gql import (
    FilterStatement,
    GqlSession,
    LetStatement,
    MatchStatement,
    execute_gql,
    execute_gql_iter,
    explain_gql,
    parse_gql_query,
)
from repro.values import is_null

HASH_ONLY = MatcherConfig(seed_chained_match=False)


def record_keys(records):
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in record.items())) for record in records
    )


class TestParsing:
    def test_statement_list(self):
        q = parse_gql_query(
            "MATCH (a)->(b) LET x = a.v FILTER x > 1 "
            "OPTIONAL MATCH (b)->(c) RETURN a, c"
        )
        kinds = [type(s) for s in q.statements]
        assert kinds == [MatchStatement, LetStatement, FilterStatement, MatchStatement]
        assert not q.statements[0].optional
        assert q.statements[3].optional
        assert q.statements[3].text.startswith("OPTIONAL MATCH")

    def test_let_multiple_assignments(self):
        q = parse_gql_query("MATCH (a) LET x = 1, y = x + 2 RETURN y")
        assert [name for name, _ in q.statements[1].assignments] == ["x", "y"]

    def test_filter_accepts_where(self):
        q = parse_gql_query("MATCH (a) FILTER WHERE a.v = 1 RETURN a")
        assert isinstance(q.statements[1], FilterStatement)

    def test_pattern_text_compat(self):
        q = parse_gql_query("MATCH (a)->(b) WHERE a.x = 1 RETURN a")
        assert "WHERE" in q.pattern_text

    def test_match_where_stays_in_statement(self):
        # The WHERE between two MATCH statements belongs to the first.
        q = parse_gql_query("MATCH (a)->(b) WHERE a.v = 1 MATCH (b)->(c) RETURN c")
        assert len(q.statements) == 2
        assert q.statements[0].pattern.where is not None
        assert q.statements[1].pattern.where is None

    def test_optional_requires_match(self):
        with pytest.raises(GpmlSyntaxError):
            parse_gql_query("OPTIONAL (a) RETURN a")

    def test_return_required(self):
        with pytest.raises(GpmlSyntaxError):
            parse_gql_query("MATCH (a)->(b)")

    def test_statement_required(self):
        with pytest.raises(GpmlSyntaxError):
            parse_gql_query("RETURN 1")


#: chained-pipeline corpus run under both execution modes
PIPELINES = [
    # plain chained MATCH, left-end seeded
    "MATCH (a:Account)-[t:Transfer]->(b) MATCH (b)-[u:Transfer]->(c) "
    "RETURN a.owner AS a, b.owner AS b, c.owner AS c",
    # right-end seeded (b is the right end of the chained pattern)
    "MATCH (a:Account)-[t:Transfer]->(b) MATCH (c:Account)-[u:Transfer]->(b) "
    "RETURN a.owner AS a, b.owner AS b, c.owner AS c",
    # two shared variables (seed + residual equi-join)
    "MATCH (a:Account)-[t:Transfer]->(b) MATCH (a)-[u:Transfer]->(b) "
    "RETURN a.owner AS a, b.owner AS b",
    # selector inside the chained statement
    "MATCH (a:Account WHERE a.owner='Dave')-[t:Transfer]->(b) "
    "MATCH ANY SHORTEST p = (b)-[:Transfer]->*(c:Account WHERE c.owner='Aretha') "
    "RETURN b.owner AS mid, length(p) AS len",
    # KEEP inside the chained statement (uncorrelated)
    "MATCH (a:Account WHERE a.owner='Dave')-[t:Transfer]->(b) "
    "MATCH TRAIL (b)-[:Transfer]->*(c:Account WHERE c.owner='Aretha') KEEP SHORTEST 1 "
    "RETURN b.owner AS mid, c.owner AS dst",
    # correlated WHERE referencing a LET value
    "MATCH (a:Account)-[t:Transfer]->(b) LET lo = 9000000 "
    "MATCH (b)-[u:Transfer]->(c) WHERE u.amount > lo "
    "RETURN a.owner AS a, c.owner AS c",
    # correlated WHERE referencing an upstream element
    "MATCH (a:Account)-[t:Transfer]->(b) MATCH (b)-[u:Transfer]->(c) "
    "WHERE u.amount > t.amount RETURN a.owner AS a, c.owner AS c",
    # OPTIONAL chained MATCH
    "MATCH (a:Account) OPTIONAL MATCH (a)-[t:Transfer]->(b:Account) "
    "RETURN a.owner AS a, b",
    # cross product (no shared variables)
    "MATCH (a:City) MATCH (b:Country) RETURN a.name AS a, b.name AS b",
    # LET + FILTER midway
    "MATCH (a:Account)-[t:Transfer]->(b) LET m = t.amount / 1000000 "
    "FILTER m >= 8 MATCH (b)-[u:Transfer]->(c) "
    "RETURN a.owner AS a, c.owner AS c, m",
    # group variable in the chained statement (horizontal aggregate)
    "MATCH (a:Account WHERE a.owner='Dave')-[:Transfer]->(b) "
    "MATCH TRAIL (b)-[e:Transfer]->*(c WHERE c.owner='Aretha') "
    "RETURN b.owner AS mid, COUNT(e) AS hops, SUM(e.amount) AS total",
]


class TestChainedSemantics:
    @pytest.mark.parametrize("query", PIPELINES)
    def test_seeded_equals_hash_join(self, fig1, query):
        seeded = execute_gql(fig1, query).records
        hashed = execute_gql(fig1, query, HASH_ONLY).records
        assert record_keys(seeded) == record_keys(hashed)

    def test_chained_match_is_a_join(self, fig1):
        # The chained result equals the equivalent single-statement
        # multi-pattern query (same comma-join semantics).
        chained = execute_gql(
            fig1,
            "MATCH (a:Account)-[t:Transfer]->(b) MATCH (b)-[u:Transfer]->(c) "
            "RETURN a.owner AS a, b.owner AS b, c.owner AS c",
        ).records
        joined = execute_gql(
            fig1,
            "MATCH (a:Account)-[t:Transfer]->(b), (b)-[u:Transfer]->(c) "
            "RETURN a.owner AS a, b.owner AS b, c.owner AS c",
        ).records
        assert record_keys(chained) == record_keys(joined)

    def test_optional_match_pads_with_null(self, fig1):
        records = execute_gql(
            fig1,
            "MATCH (a:Account WHERE a.owner='Dave') "
            "OPTIONAL MATCH (a)-[t:Transfer]->(b WHERE b.isBlocked='yes') "
            "RETURN a.owner AS a, b",
        ).records
        # Dave only transfers to unblocked accounts: one row, b is NULL
        assert len(records) == 1
        assert records[0]["a"] == "Dave" and is_null(records[0]["b"])

    def test_null_never_joins(self, fig1):
        # A NULL from OPTIONAL MATCH drops the row in a later MATCH ...
        dropped = execute_gql(
            fig1,
            "MATCH (a:Account WHERE a.owner='Dave') "
            "OPTIONAL MATCH (a)-[t:Transfer]->(b WHERE b.owner='nobody') "
            "MATCH (b)-[u:Transfer]->(c) RETURN c",
        ).records
        assert dropped == []
        # ... and NULL-pads again in a later OPTIONAL MATCH.
        padded = execute_gql(
            fig1,
            "MATCH (a:Account WHERE a.owner='Dave') "
            "OPTIONAL MATCH (a)-[t:Transfer]->(b WHERE b.owner='nobody') "
            "OPTIONAL MATCH (b)-[u:Transfer]->(c) RETURN a.owner AS a, c",
        ).records
        assert len(padded) == 1 and is_null(padded[0]["c"])

    def test_let_extends_rows(self, fig1):
        records = execute_gql(
            fig1,
            "MATCH (a:Account)-[t:Transfer]->(b) "
            "LET m = t.amount / 1000000, double = m * 2 "
            "RETURN m, double LIMIT 1",
        ).records
        assert records[0]["double"] == records[0]["m"] * 2

    def test_filter_three_valued(self, fig1):
        # UNKNOWN (NULL comparison) drops the row, like WHERE.
        records = execute_gql(
            fig1,
            "MATCH (a:Account) FILTER a.noSuchProp > 0 RETURN a.owner AS o",
        ).records
        assert records == []

    def test_filter_after_optional(self, fig1):
        records = execute_gql(
            fig1,
            "MATCH (a:Account) OPTIONAL MATCH (a)-[t:Transfer]->(b) "
            "FILTER b IS NULL RETURN a.owner AS o",
        ).records
        # exactly the accounts with no outgoing transfer
        outgoing = execute_gql(
            fig1,
            "MATCH (a:Account)-[t:Transfer]->(b) RETURN DISTINCT a.owner AS o",
        ).records
        all_accounts = execute_gql(fig1, "MATCH (a:Account) RETURN a.owner AS o").records
        expected = {r["o"] for r in all_accounts} - {r["o"] for r in outgoing}
        assert {r["o"] for r in records} == expected

    def test_vertical_aggregation_over_chain(self, fig1):
        records = execute_gql(
            fig1,
            "MATCH (a:Account)-[t:Transfer]->(b) MATCH (b)-[u:Transfer]->(c) "
            "RETURN b.owner AS mid, COUNT(c) AS fanout ORDER BY fanout DESC, mid",
        ).records
        assert records[0] == {"mid": "Mike", "fanout": 4}

    def test_lone_let_pipeline(self, fig1):
        # A pipeline may start with LET (unit table in, one row out).
        records = execute_gql(fig1, "LET x = 2 LET y = x * 3 RETURN y").records
        assert records == [{"y": 6}]

    def test_order_by_upstream_variable(self, fig1):
        records = execute_gql(
            fig1,
            "MATCH (a:Account)-[t:Transfer]->(b) LET m = t.amount "
            "MATCH (b)-[u:Transfer]->(c) "
            "RETURN a.owner AS a, m ORDER BY m DESC, a LIMIT 2",
        ).records
        assert records == sorted(
            records, key=lambda r: (-r["m"], r["a"])
        )


class TestVariableRules:
    def test_let_cannot_rebind(self, fig1):
        with pytest.raises(GqlError, match="re-define"):
            execute_gql(fig1, "MATCH (a) LET a = 1 RETURN a")

    def test_path_variable_cannot_join(self, fig1):
        with pytest.raises(GqlError, match="path"):
            execute_gql(
                fig1, "MATCH p = (a)->(b) MATCH p = (c)->(d) RETURN p"
            )

    def test_group_variable_cannot_join(self, fig1):
        with pytest.raises(GqlError, match="group"):
            execute_gql(
                fig1,
                "MATCH (a)-[t:Transfer]->(b) "
                "MATCH TRAIL (b)-[t:Transfer]->*(c) RETURN c",
            )

    def test_unknown_where_variable(self, fig1):
        with pytest.raises(GqlError, match="unknown variable"):
            execute_gql(fig1, "MATCH (a)->(b) WHERE zz.x = 1 RETURN a")

    def test_unknown_filter_variable(self, fig1):
        # A typo in FILTER/LET errors instead of silently emptying the result.
        with pytest.raises(GqlError, match="unknown variable"):
            execute_gql(fig1, "MATCH (a:Account) FILTER nosuchvar > 1 RETURN a")
        with pytest.raises(GqlError, match="unknown variable"):
            execute_gql(fig1, "MATCH (a:Account) LET x = nosuchvar + 1 RETURN x")

    def test_rebinding_singleton_is_a_join(self, fig1):
        # Same variable in both statements = equi-join, not an error.
        records = execute_gql(
            fig1,
            "MATCH (a:Account WHERE a.owner='Dave') MATCH (a)-[t:Transfer]->(b) "
            "RETURN b.owner AS b",
        ).records
        assert {r["b"] for r in records} == {"Mike", "Charles"}

    def test_element_where_cannot_see_upstream(self, fig1):
        # Prefilters run inside the NFA search; a clear error points at
        # the final WHERE / FILTER instead of a deep scope error.
        with pytest.raises(GqlError, match="final WHERE"):
            execute_gql(
                fig1,
                "LET m = 1000000 "
                "MATCH (a:Account)-[t:Transfer WHERE t.amount >= m]->(b) RETURN a",
            )

    def test_unjoinable_let_value_never_joins(self, fig1):
        # A LET-bound list has no join partners in either execution mode
        # (and must not crash the hash-join probe).
        query = (
            "MATCH p = (a:Account)-[t:Transfer]->(b) LET l = nodes(p) "
            "MATCH (l)-[v:Transfer]->(c) RETURN c"
        )
        assert execute_gql(fig1, query).records == []
        assert execute_gql(fig1, query, HASH_ONLY).records == []

    def test_null_probe_skips_hash_build(self, fig1):
        # A probe row that cannot join must not trigger the build-side
        # enumeration of the chained pattern.
        stats = PipelineStats()
        records = list(execute_gql_iter(
            fig1,
            "MATCH (a:Account WHERE a.owner='nobody') "
            "OPTIONAL MATCH (a)-[t:Transfer]->(b) "
            "MATCH (x:Account)-[u:Transfer]->(b) RETURN x",
            HASH_ONLY,
            stats=stats,
        ))
        assert records == []
        # only the first (empty) search ran; the chained pattern never built
        assert stats.matches == 0

    def test_let_value_seeds_chained_match(self, fig1):
        # A LET-bound element joins (and seeds) a later pattern variable.
        records = execute_gql(
            fig1,
            "MATCH (src:Account WHERE src.owner='Dave')-[t:Transfer]->(dst) "
            "LET b = dst MATCH (b)-[u:Transfer]->(c) RETURN c.owner AS c",
        ).records
        # Dave -> {Mike, Charles}; Mike -> {Aretha, Charles}, Charles -> {Scott}
        assert {r["c"] for r in records} == {"Aretha", "Charles", "Scott"}


class TestStreaming:
    @pytest.mark.parametrize("query", PIPELINES)
    def test_limit_is_prefix(self, fig1, query):
        full = execute_gql(fig1, query).records
        limited = execute_gql(fig1, query + " LIMIT 2").records
        assert limited == full[:2]

    def test_budget_cancels_first_statement(self):
        graph = random_transfer_network(2000, 5000, seed=2)
        query = (
            "MATCH (a:Account)-[t:Transfer]->(b:Account) "
            "MATCH (b)-[u:Transfer]->(c:Account) RETURN a.owner AS a, c.owner AS c"
        )
        full = PipelineStats()
        list(execute_gql_iter(graph, query, stats=full))
        limited = PipelineStats()
        records = list(execute_gql_iter(graph, query + " LIMIT 1", stats=limited))
        assert len(records) == 1
        assert limited.steps * 20 < full.steps

    def test_seeding_beats_hash_join_on_steps(self):
        graph = random_transfer_network(2000, 5000, seed=2)
        query = (
            "MATCH (a:Account WHERE a.owner='owner7')-[t:Transfer]->(b:Account) "
            "MATCH (b)-[u:Transfer]->(c:Account) RETURN c.owner AS c"
        )
        seeded = PipelineStats()
        seeded_records = list(execute_gql_iter(graph, query, stats=seeded))
        hashed = PipelineStats()
        hashed_records = list(
            execute_gql_iter(graph, query, HASH_ONLY, stats=hashed)
        )
        assert record_keys(seeded_records) == record_keys(hashed_records)
        assert seeded.steps * 20 < hashed.steps

    def test_session_first_on_pipeline(self, fig1):
        session = GqlSession(fig1)
        query = (
            "MATCH (a:Account)-[t:Transfer]->(b) MATCH (b)-[u:Transfer]->(c) "
            "RETURN a.owner AS a, c.owner AS c"
        )
        assert session.first(query) == session.execute(query).records[0]
        assert session.exists(query)

    def test_repeated_seeds_are_memoized(self):
        # Hub graph: many incoming rows share the same seed node.  The
        # anchored search must run once per distinct seed, not per row —
        # otherwise seeding does *more* work than the hash join.
        from repro.graph import GraphBuilder

        builder = GraphBuilder("hub")
        builder.node("hub", "N")
        for i in range(40):
            builder.node(f"s{i}", "N")
            builder.node(f"d{i}", "N")
            builder.directed(f"in{i}", f"s{i}", "hub", "E")
            builder.directed(f"out{i}", "hub", f"d{i}", "E")
        graph = builder.build()
        query = "MATCH (x)-[e:E]->(y) MATCH (y)-[f:E]->(z) RETURN x, z"
        seeded = PipelineStats()
        seeded_records = list(execute_gql_iter(graph, query, stats=seeded))
        hashed = PipelineStats()
        hashed_records = list(execute_gql_iter(graph, query, HASH_ONLY, stats=hashed))
        assert record_keys(seeded_records) == record_keys(hashed_records)
        assert seeded.steps <= 2 * hashed.steps

    def test_limit_zero_runs_no_search(self, fig1):
        stats = PipelineStats()
        query = (
            "MATCH (a:Account)-[t:Transfer]->(b) MATCH (b)-[u:Transfer]->(c) "
            "RETURN c LIMIT 0"
        )
        assert list(execute_gql_iter(fig1, query, stats=stats)) == []
        assert stats.steps == 0


class TestExplain:
    def test_seeded_mode_rendered(self, fig1):
        plan = explain_gql(
            "MATCH (a:Account)-[t:Transfer]->(b) MATCH (b)-[u:Transfer]->(c) "
            "RETURN c LIMIT 1"
        )
        assert "statement #1" in plan and "statement #2" in plan
        assert "seeded search on b (left end bound upstream)" in plan
        assert "row budget = OFFSET+LIMIT" in plan

    def test_hash_join_mode_rendered(self):
        plan = explain_gql(
            "MATCH (a:City) MATCH (b:Country) MATCH (c:City) RETURN a, b, c"
        )
        assert "[blocking] hash-join build of the full match table (cross product)" in plan

    def test_let_filter_and_breakers_rendered(self):
        plan = explain_gql(
            "MATCH (a:Account) LET x = a.owner FILTER x <> 'Jay' "
            "RETURN x, COUNT(a) AS n ORDER BY n"
        )
        assert "extend each row with x" in plan
        assert "per-row predicate" in plan
        assert "vertical aggregation + ORDER BY materializes all records" in plan

    def test_session_explain(self, fig1):
        session = GqlSession(fig1)
        assert "GQL pipeline" in session.explain("MATCH (a) RETURN a")

    def test_explain_respects_config(self):
        # EXPLAIN must render the mode the given config will execute.
        query = (
            "MATCH (a:Account)-[t:Transfer]->(b) MATCH (b)-[u:Transfer]->(c) "
            "RETURN c"
        )
        assert "seeded search on b" in explain_gql(query)
        fallback = explain_gql(query, HASH_ONLY)
        assert "seeded search" not in fallback
        assert "hash-join build" in fallback

    def test_offset_only_has_no_budget_line(self):
        # OFFSET without LIMIT runs to exhaustion; EXPLAIN must not
        # promise a budget that execution never creates.
        plan = explain_gql("MATCH (a)-[t:Transfer]->(b) RETURN a OFFSET 2")
        assert "row budget = OFFSET+LIMIT" not in plan
        assert "no LIMIT: runs to exhaustion" in plan

    def test_optional_padding_rendered(self):
        plan = explain_gql(
            "MATCH (a:Account) OPTIONAL MATCH (a)-[t:Transfer]->(b) RETURN a, b"
        )
        assert "NULL-pad rows without join partners" in plan


class TestCli:
    def test_gql_subcommand(self, capsys):
        from repro.cli import main

        code = main([
            "gql",
            "MATCH (a:Account)-[t:Transfer]->(b) MATCH (b)-[u:Transfer]->(c) "
            'RETURN a.owner AS src, c.owner AS dst LIMIT 3',
            "--stats",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "src | dst" in out
        assert "(3 record(s))" in out
        assert "matcher steps" in out

    def test_gql_explain(self, capsys):
        from repro.cli import main

        code = main([
            "gql", "--explain",
            "MATCH (a)-[t:Transfer]->(b) MATCH (b)-[u:Transfer]->(c) RETURN c",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "seeded search on b" in out

    def test_gql_first(self, capsys):
        from repro.cli import main

        code = main(["gql", "--first", "MATCH (a:Account) RETURN a.owner AS o"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(1 record(s))" in out

    def test_gql_error(self, capsys):
        from repro.cli import main

        code = main(["gql", "MATCH (a) LET a = 1 RETURN a"])
        assert code == 1
        assert "re-define" in capsys.readouterr().err
