"""GQL DML statements: INSERT / SET / DELETE in the statement pipeline.

Covers the grammar, the binding rules (fresh vs bound variables), the
per-row execution semantics against incoming binding tables, and the
transactional contract: a statement that fails mid-flight leaves the
graph byte-identical to its pre-query state — elements, property
indexes, statistics and the version counter all restored.
"""

import pytest

from repro.errors import GqlError, GraphError
from repro.graph import graph_to_json
from repro.graph.model import PropertyGraph
from repro.gql import execute_gql, explain_gql
from repro.gql.query import execute_gql_iter, parse_gql_query


def bank() -> PropertyGraph:
    g = PropertyGraph("bank")
    g.add_node("a1", labels=["Account"], properties={"owner": "ann", "blocked": True})
    g.add_node("a2", labels=["Account"], properties={"owner": "bob", "blocked": False})
    g.add_node("a3", labels=["Account"], properties={"owner": "cat", "blocked": False})
    g.add_edge("t1", "a1", "a2", labels=["Transfer"], properties={"amount": 10})
    return g


class TestInsert:
    def test_insert_node_with_labels_and_properties(self):
        g = bank()
        result = execute_gql(g, "INSERT (:Account {owner: 'dan', blocked: FALSE})")
        assert result.mutations == {"nodes_created": 1}
        assert len(result) == 0
        [node] = [n for n in g.nodes() if n.get("owner") == "dan"]
        assert node.labels == frozenset({"Account"})

    def test_insert_path_creates_nodes_and_edges(self):
        g = bank()
        result = execute_gql(
            g,
            "INSERT (x:Account {owner: 'x'})-[:Transfer {amount: 5}]->"
            "(y:Account {owner: 'y'}), (x)<-[:Transfer {amount: 6}]-(y)",
        )
        assert result.mutations == {"nodes_created": 2, "edges_created": 2}

    def test_insert_multilabel_ampersand(self):
        g = bank()
        execute_gql(g, "INSERT (:Account&Suspect {owner: 'zz'})")
        [node] = [n for n in g.nodes() if n.get("owner") == "zz"]
        assert node.labels == frozenset({"Account", "Suspect"})

    def test_insert_per_matched_row(self):
        g = bank()
        result = execute_gql(
            g,
            "MATCH (a:Account WHERE a.blocked = FALSE) "
            "INSERT (a)-[:FlaggedBy]->(:Reviewer {src: a.owner})",
        )
        assert result.mutations == {"nodes_created": 2, "edges_created": 2}
        assert {n.get("src") for n in g.nodes_with_label("Reviewer")} == {"bob", "cat"}

    def test_insert_reuses_bound_variable_within_statement(self):
        g = bank()
        result = execute_gql(
            g, "INSERT (h:Hub), (h)-[:Spoke]->(:Leaf), (h)-[:Spoke]->(:Leaf)"
        )
        assert result.mutations == {"nodes_created": 3, "edges_created": 2}
        [hub] = g.nodes_with_label("Hub")
        assert len(g.incidences(hub.id)) == 2

    def test_insert_returns_created_elements(self):
        g = bank()
        result = execute_gql(
            g, "INSERT (n:Account {owner: 'new'}) RETURN n.owner AS owner"
        )
        assert [r["owner"] for r in result] == ["new"]

    def test_insert_null_property_omitted(self):
        g = bank()
        execute_gql(g, "INSERT (n:Thing {p: NULL, q: 1})")
        [node] = g.nodes_with_label("Thing")
        assert dict(node.properties) == {"q": 1}

    def test_insert_bound_var_with_spec_rejected(self):
        g = bank()
        with pytest.raises(GqlError, match="already bound"):
            parse_and_run(g, "MATCH (a:Account) INSERT (a:Extra)")

    def test_insert_unbound_edge_endpoint_is_created(self):
        g = bank()
        execute_gql(g, "INSERT ()-[:Link]->()")
        assert g.num_nodes == 5


def parse_and_run(graph, text):
    return execute_gql(graph, text)


class TestSet:
    def test_set_property(self):
        g = bank()
        result = execute_gql(
            g, "MATCH (a:Account WHERE a.owner = 'ann') SET a.blocked = FALSE"
        )
        assert result.mutations == {"properties_set": 1}
        assert g.property_of("a1", "blocked") is False

    def test_set_null_removes_property(self):
        g = bank()
        execute_gql(g, "MATCH (a:Account WHERE a.owner = 'ann') SET a.blocked = NULL")
        assert "blocked" not in g.node("a1").properties

    def test_set_labels_additive(self):
        g = bank()
        execute_gql(g, "MATCH (a:Account WHERE a.blocked) SET a:Frozen&Audited")
        assert g.labels_of("a1") == frozenset({"Account", "Frozen", "Audited"})
        assert g.labels_of("a2") == frozenset({"Account"})

    def test_set_no_op_counts_nothing(self):
        g = bank()
        result = execute_gql(
            g, "MATCH (a:Account WHERE a.owner = 'ann') SET a.blocked = TRUE"
        )
        assert result.mutations == {}

    def test_set_on_edge(self):
        g = bank()
        execute_gql(g, "MATCH ()-[t:Transfer]->() SET t.amount = t.amount + 1")
        assert g.property_of("t1", "amount") == 11

    def test_set_requires_element(self):
        g = bank()
        with pytest.raises(GqlError):
            execute_gql(g, "MATCH (a:Account) LET v = 1 SET v.p = 2")


class TestDelete:
    def test_delete_edge(self):
        g = bank()
        result = execute_gql(g, "MATCH ()-[t:Transfer]->() DELETE t")
        assert result.mutations == {"edges_deleted": 1}
        assert not g.has_edge("t1")

    def test_delete_node_with_edges_requires_detach(self):
        g = bank()
        before = graph_to_json(g)
        with pytest.raises(GqlError, match="DETACH"):
            execute_gql(g, "MATCH (a:Account WHERE a.owner = 'ann') DELETE a")
        # the failed statement rolled back completely
        assert graph_to_json(g) == before

    def test_detach_delete_cascades(self):
        g = bank()
        result = execute_gql(
            g, "MATCH (a:Account WHERE a.owner = 'ann') DETACH DELETE a"
        )
        assert result.mutations == {"nodes_deleted": 1, "edges_deleted": 1}
        assert not g.has_node("a1") and not g.has_edge("t1")

    def test_double_delete_is_idempotent(self):
        g = bank()
        g.add_edge("t2", "a1", "a2", labels=["Transfer"])
        result = execute_gql(
            g, "MATCH (a:Account)-[t:Transfer]-(b:Account) DELETE t"
        )
        # both orientations of each edge appear as rows; each edge dies once
        assert result.mutations == {"edges_deleted": 2}


class TestTransactionality:
    def test_runtime_error_rolls_back_everything(self):
        g = bank()
        g.create_index("Account", "owner")
        before = graph_to_json(g)
        version = g.version
        with pytest.raises(Exception):
            # the SET succeeds for some rows, then dividing by a string
            # property blows up mid-statement
            execute_gql(
                g,
                "MATCH (a:Account) SET a.score = 1 / a.owner",
            )
        assert graph_to_json(g) == before
        assert g.version == version
        # the index survived the rollback and still answers correctly
        assert g.has_index("Account", "owner")
        result = execute_gql(
            g, "MATCH (a:Account WHERE a.owner = 'bob') RETURN a.owner AS o"
        )
        assert [r["o"] for r in result] == ["bob"]

    def test_rollback_restores_deleted_elements_in_order(self):
        g = bank()
        order_before = list(g.node_ids())
        with pytest.raises(GqlError):
            # DETACH DELETE runs, then the non-element delete target fails
            execute_gql(g, "MATCH (a:Account) LET v = 5 DETACH DELETE a, v")
        assert list(g.node_ids()) == order_before

    def test_write_query_ignores_row_budget(self):
        g = bank()
        # LIMIT slices the *returned* records, never the mutation set
        result = execute_gql(
            g, "MATCH (a:Account) SET a.seen = TRUE RETURN a.owner AS o LIMIT 1"
        )
        assert len(result) == 1
        assert result.mutations == {"properties_set": 3}

    def test_eager_execution_without_draining(self):
        g = bank()
        execute_gql_iter(g, parse_gql_query("INSERT (:Marker)"))
        # the iterator was never drained; the write still committed
        assert len(g.nodes_with_label("Marker")) == 1


class TestExplain:
    def test_explain_marks_dml_transaction(self):
        text = explain_gql("MATCH (a:Account) SET a.x = 1 RETURN a.x AS x")
        assert "DML transaction" in text
        assert "commit on success or rollback" in text

    def test_explain_write_only_query(self):
        text = explain_gql("INSERT (:A)-[:E]->(:B)")
        assert "write-only" in text

    def test_parse_rejects_trailing_garbage(self):
        with pytest.raises(Exception):
            parse_gql_query("INSERT (:A) nonsense")
