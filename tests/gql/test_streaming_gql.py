"""GQL streaming: execute_gql_iter, LIMIT/OFFSET pushdown, exists/first.

Includes the OFFSET regression corpus (``OFFSET 0``, ``LIMIT 0``, offset
past the end, DISTINCT + LIMIT interplay) and the budget-vs-LIMIT
interaction through the GQL surface and GRAPH_TABLE.
"""

from itertools import islice

import pytest

from repro.datasets.generators import random_transfer_network
from repro.errors import BudgetExceededError
from repro.gpml import PipelineStats
from repro.gpml.matcher import MatcherConfig
from repro.gql import GqlSession
from repro.gql.query import execute_gql, execute_gql_iter
from repro.pgq.graph_table import graph_table


#: queries spanning the streaming path (no breakers), DISTINCT, and the
#: blocking path (ORDER BY, vertical aggregation).
GQL_CORPUS = [
    "MATCH (a:Account)-[t:Transfer]->(b) RETURN a.owner AS src, b.owner AS dst",
    "MATCH (a:Account)-[t:Transfer]->(b) RETURN a.owner AS src LIMIT 3",
    "MATCH (a:Account)-[t:Transfer]->(b) RETURN DISTINCT a.owner AS src",
    "MATCH (a:Account)-[t:Transfer]->(b) RETURN DISTINCT a.owner AS src LIMIT 2",
    "MATCH (a:Account)-[t:Transfer]->(b) RETURN a.owner AS src OFFSET 2 LIMIT 3",
    "MATCH (a:Account)-[t:Transfer]->(b) "
    "RETURN a.owner AS src ORDER BY a.owner DESC LIMIT 2",
    "MATCH (a:Account)-[t:Transfer]->(b) RETURN a.owner AS src, COUNT(b) AS n",
    "MATCH TRAIL p = (a:Account)-[e:Transfer]->*(b) RETURN length(p) AS len LIMIT 4",
    "MATCH ANY SHORTEST p = (a:Account)-[:Transfer]->*(b) RETURN length(p) AS len",
]


class TestIterEquivalence:
    @pytest.mark.parametrize("query", GQL_CORPUS)
    def test_iter_equals_materialized(self, fig1, query):
        materialized = execute_gql(fig1, query).records
        streamed = list(execute_gql_iter(fig1, query))
        assert streamed == materialized

    def test_islice_prefix(self, fig1):
        query = "MATCH (a:Account)-[t:Transfer]->(b) RETURN a.owner AS src"
        full = execute_gql(fig1, query).records
        assert list(islice(execute_gql_iter(fig1, query), 3)) == full[:3]


class TestOffsetLimitRegressions:
    """Satellite: the falsy OFFSET check and its edge cases."""

    QUERY = "MATCH (a:Account)-[t:Transfer]->(b) RETURN a.owner AS src"

    def test_offset_zero_is_noop(self, fig1):
        plain = execute_gql(fig1, self.QUERY).records
        offset0 = execute_gql(fig1, self.QUERY + " OFFSET 0").records
        assert offset0 == plain

    def test_offset_zero_with_limit(self, fig1):
        plain = execute_gql(fig1, self.QUERY).records
        sliced = execute_gql(fig1, self.QUERY + " LIMIT 2 OFFSET 0").records
        assert sliced == plain[:2]

    def test_limit_zero_empty(self, fig1):
        assert execute_gql(fig1, self.QUERY + " LIMIT 0").records == []
        assert list(execute_gql_iter(fig1, self.QUERY + " LIMIT 0")) == []

    def test_limit_zero_runs_no_search(self, fig1):
        stats = PipelineStats()
        assert list(execute_gql_iter(fig1, self.QUERY + " LIMIT 0", stats=stats)) == []
        assert stats.steps == 0

    def test_offset_past_end(self, fig1):
        total = len(execute_gql(fig1, self.QUERY).records)
        past = execute_gql(fig1, f"{self.QUERY} OFFSET {total + 5}").records
        assert past == []
        past_limited = execute_gql(
            fig1, f"{self.QUERY} LIMIT 3 OFFSET {total + 5}"
        ).records
        assert past_limited == []

    def test_offset_slices_after_distinct(self, fig1):
        distinct = execute_gql(fig1, "MATCH (a:Account)-[t:Transfer]->(b) "
                                     "RETURN DISTINCT a.owner AS src").records
        shifted = execute_gql(fig1, "MATCH (a:Account)-[t:Transfer]->(b) "
                                    "RETURN DISTINCT a.owner AS src OFFSET 1").records
        assert shifted == distinct[1:]

    def test_distinct_limit_interplay(self, fig1):
        # LIMIT counts *distinct* records: the search must keep running
        # past duplicate projections until enough survive.
        distinct = execute_gql(fig1, "MATCH (a:Account)-[t:Transfer]->(b) "
                                     "RETURN DISTINCT a.owner AS src").records
        assert len(distinct) >= 3
        limited = execute_gql(fig1, "MATCH (a:Account)-[t:Transfer]->(b) "
                                    "RETURN DISTINCT a.owner AS src LIMIT 3").records
        assert limited == distinct[:3]

    def test_order_by_with_offset_zero(self, fig1):
        ordered = execute_gql(fig1, self.QUERY + " ORDER BY src").records
        offset0 = execute_gql(fig1, self.QUERY + " ORDER BY src OFFSET 0").records
        assert offset0 == ordered


class TestLimitPushdown:
    def test_limit_stops_search(self):
        graph = random_transfer_network(2000, 5000, seed=2)
        query = "MATCH (a:Account)-[t:Transfer]->(b:Account) RETURN t.amount AS amount"
        full = PipelineStats()
        list(execute_gql_iter(graph, query, stats=full))
        limited = PipelineStats()
        records = list(execute_gql_iter(graph, query + " LIMIT 1", stats=limited))
        assert len(records) == 1
        assert limited.steps * 20 < full.steps

    def test_order_by_cannot_push(self, fig1):
        # A pipeline breaker: LIMIT still slices correctly, after the sort.
        query = ("MATCH (a:Account)-[t:Transfer]->(b) "
                 "RETURN a.owner AS src ORDER BY src LIMIT 2")
        records = execute_gql(fig1, query).records
        ordered = execute_gql(fig1, "MATCH (a:Account)-[t:Transfer]->(b) "
                                    "RETURN a.owner AS src ORDER BY src").records
        assert records == ordered[:2]

    def test_limit_satisfied_query_ignores_max_results(self, fig1):
        config = MatcherConfig(max_results=3)
        query = "MATCH (x)-[e]-(y) RETURN x AS x LIMIT 2"
        assert len(execute_gql(fig1, query, config).records) == 2
        with pytest.raises(BudgetExceededError):
            execute_gql(fig1, "MATCH (x)-[e]-(y) RETURN x AS x", config)


class TestSessionStreaming:
    def test_execute_iter(self, fig1):
        session = GqlSession(fig1)
        query = "MATCH (a:Account)-[t:Transfer]->(b) RETURN a.owner AS src"
        assert list(session.execute_iter(query)) == session.execute(query).records

    def test_exists(self, fig1):
        session = GqlSession(fig1)
        assert session.exists("MATCH (a:Account) RETURN a AS a")
        assert not session.exists("MATCH (a:NoSuchLabel) RETURN a AS a")

    def test_exists_is_cheap(self):
        graph = random_transfer_network(2000, 5000, seed=2)
        session = GqlSession(graph)
        stats = PipelineStats()
        records = session.execute_iter(
            "MATCH (a:Account)-[t:Transfer]->(b:Account) RETURN t AS t LIMIT 1",
            stats=stats,
        )
        assert next(iter(records), None) is not None
        assert stats.steps < 200

    def test_exists_respects_offset(self, fig1):
        session = GqlSession(fig1)
        total = len(session.execute(
            "MATCH (a:Account)-[t:Transfer]->(b) RETURN t AS t").records)
        assert session.exists(
            f"MATCH (a:Account)-[t:Transfer]->(b) RETURN t AS t OFFSET {total - 1}")
        assert not session.exists(
            f"MATCH (a:Account)-[t:Transfer]->(b) RETURN t AS t OFFSET {total}")

    def test_first(self, fig1):
        session = GqlSession(fig1)
        query = "MATCH (a:Account)-[t:Transfer]->(b) RETURN a.owner AS src"
        assert session.first(query) == session.execute(query).records[0]
        assert session.first("MATCH (a:NoSuchLabel) RETURN a AS a") is None


class TestGraphTableLimit:
    QUERY = ("MATCH (a:Account)-[t:Transfer]->(b:Account) "
             "COLUMNS (a.owner AS src, t.amount AS amount)")

    def test_limit_is_prefix_of_full(self, fig1):
        full = graph_table(fig1, self.QUERY)
        limited = graph_table(fig1, self.QUERY, limit=2)
        assert limited.rows == full.rows[:2]
        assert limited.columns == full.columns

    def test_limit_zero(self, fig1):
        assert graph_table(fig1, self.QUERY, limit=0).rows == []

    def test_limit_stops_search(self):
        graph = random_transfer_network(2000, 5000, seed=2)
        full = PipelineStats()
        graph_table(graph, self.QUERY, stats=full)
        limited = PipelineStats()
        table = graph_table(graph, self.QUERY, limit=1, stats=limited)
        assert len(table.rows) == 1
        assert limited.steps * 20 < full.steps
