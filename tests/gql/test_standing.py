"""Standing queries: registration rules, delta semantics, sessions.

The differential soundness of the incremental maintenance is hammered by
``tests/property/test_standing_differential.py``; these tests pin the
API contract — what registers, what is rejected and why, what a delta
carries, how the limited view truncates, and how a closed query behaves.
"""

import pytest

from repro.errors import GqlError
from repro.graph.model import PropertyGraph
from repro.gql import execute_gql
from repro.gql.session import GqlSession
from repro.gql.standing import StandingQuery, _max_edges
from repro.gql.query import parse_gql_query
from repro.obs import Telemetry


def chain(n=5) -> PropertyGraph:
    g = PropertyGraph("chain")
    for i in range(n):
        g.add_node(f"n{i}", labels=["N"], properties={"v": i})
    for i in range(n - 1):
        g.add_edge(f"e{i}", f"n{i}", f"n{i+1}", labels=["E"])
    return g


def canon(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in r.items())) for r in rows)


def scratch(graph, text):
    return canon(list(execute_gql(graph, text)))


QUERY = "MATCH (a:N)-[:E]->(b:N) RETURN a.v AS src, b.v AS dst"


class TestRegistration:
    def test_initial_fill_equals_scratch(self):
        g = chain()
        sq = StandingQuery(g, QUERY)
        assert canon(sq.rows()) == scratch(g, QUERY)

    @pytest.mark.parametrize(
        "query,fragment",
        [
            ("MATCH (a:N) RETURN a.v AS v ORDER BY v", "ORDER BY"),
            ("MATCH (a:N) RETURN DISTINCT a.v AS v", "DISTINCT"),
            ("MATCH (a:N) RETURN a.v AS v OFFSET 1", "OFFSET"),
            ("MATCH (a:N) RETURN count(a) AS n", "vertical"),
            ("MATCH (a:N) SET a.v = 0", "read-only"),
            ("MATCH (a:N), (b:N) RETURN a.v AS x, b.v AS y", "one path"),
            ("MATCH (a:N) MATCH (b:N) RETURN a.v AS x, b.v AS y", "shares no"),
            (
                "MATCH (a:N) LET k = a.v MATCH (b:N WHERE b.v = k) "
                "RETURN a.v AS x, b.v AS y",
                "element joins",
            ),
            ("OPTIONAL MATCH (a:N) RETURN a.v AS v", "OPTIONAL"),
        ],
    )
    def test_rejections(self, query, fragment):
        g = chain()
        with pytest.raises(GqlError, match=fragment.split()[0]):
            StandingQuery(g, query)

    def test_limit_in_query_text_adopted(self):
        g = chain()
        sq = StandingQuery(g, QUERY + " LIMIT 2")
        assert len(sq.rows()) == 2

    def test_depth_computation(self):
        g = chain()
        assert StandingQuery(g, "MATCH (a:N) RETURN a.v AS v").depth == 0
        assert StandingQuery(g, QUERY).depth == 1
        assert (
            StandingQuery(
                g, "MATCH (a:N)-[:E]->{1,3}(b:N) RETURN b.v AS v"
            ).depth
            == 3
        )
        assert (
            StandingQuery(
                g, "MATCH TRAIL (a:N)-[:E]->*(b:N) RETURN b.v AS v"
            ).depth
            is None
        )

    def test_chained_match_depth_sums(self):
        g = chain()
        sq = StandingQuery(
            g,
            "MATCH (a:N)-[:E]->(b:N) MATCH (b)-[:E]->(c:N) "
            "RETURN a.v AS x, c.v AS z",
        )
        assert sq.depth == 2

    def test_max_edges_alternation_takes_worst_branch(self):
        parsed = parse_gql_query(
            "MATCH (a:N) (-[:E]->-[:E]-> | -[:E]->) (b:N) RETURN a.v AS v"
        )
        pattern = parsed.statements[0].pattern.paths[0].pattern
        assert _max_edges(pattern) == 2


class TestDeltas:
    def test_added_and_retracted(self):
        g = chain()
        sq = StandingQuery(g, QUERY)
        g.add_edge("x", "n4", "n0", labels=["E"])
        delta = sq.refresh()
        assert [r["src"] for r in delta.added] == [4]
        assert not delta.retracted
        g.remove_edge("e0")
        delta = sq.refresh()
        assert [r["dst"] for r in delta.retracted] == [1]
        assert canon(sq.rows()) == scratch(g, QUERY)

    def test_retraction_ships_full_record_after_elements_die(self):
        g = chain()
        sq = StandingQuery(g, QUERY)
        g.remove_node("n1")  # cascades e0, e1
        delta = sq.refresh()
        assert canon(delta.retracted) == canon(
            [{"src": 0, "dst": 1}, {"src": 1, "dst": 2}]
        )

    def test_property_flip_cancels_out(self):
        g = chain()
        q = "MATCH (a:N WHERE a.v < 10)-[:E]->(b:N) RETURN a.v AS src, b.v AS dst"
        sq = StandingQuery(g, q)
        before = canon(sq.rows())
        # touch a node without changing the result: net delta is empty
        g.set_property("n2", "w", "irrelevant")
        delta = sq.refresh()
        assert delta.empty and delta.changes == 1
        assert canon(sq.rows()) == before

    def test_refresh_without_changes_is_free(self):
        g = chain()
        sq = StandingQuery(g, QUERY)
        delta = sq.refresh()
        assert delta.empty and delta.steps == 0 and delta.region_size == 0

    def test_rolled_back_transaction_emits_nothing(self):
        g = chain()
        sq = StandingQuery(g, QUERY)
        with pytest.raises(GqlError):
            execute_gql(g, "MATCH (a:N) DELETE a")  # needs DETACH → rollback
        assert sq.pending == 0
        assert sq.refresh().empty

    def test_batch_notification_is_one_refresh(self):
        g = chain()
        sq = StandingQuery(g, QUERY)
        execute_gql(
            g,
            "INSERT (p:N {v: 100})-[:E]->(q:N {v: 101}), (q)-[:E]->(p)",
        )
        assert sq.pending == 4  # 2 nodes + 2 edges, delivered as one batch
        delta = sq.refresh()
        assert delta.changes == 4
        assert canon(sq.rows()) == scratch(g, QUERY)

    def test_close_stops_the_feed(self):
        g = chain()
        sq = StandingQuery(g, QUERY)
        sq.close()
        g.add_edge("y", "n0", "n2", labels=["E"])
        assert sq.pending == 0
        with pytest.raises(GqlError):
            sq.refresh()

    def test_limited_view_is_canonical_prefix(self):
        g = chain()
        sq = StandingQuery(g, QUERY, limit=2)
        full = StandingQuery(g, QUERY)
        assert canon(sq.rows()) == canon(full.rows()[:2])
        g.add_edge("z", "n2", "n0", labels=["E"])
        sq.refresh()
        full.refresh()
        assert canon(sq.rows()) == canon(full.rows()[:2])


class TestSessionIntegration:
    def test_register_standing_resolves_graph_and_telemetry(self):
        g = chain()
        telemetry = Telemetry()
        session = GqlSession(g, telemetry=telemetry)
        sq = session.register_standing(QUERY)
        session.execute("INSERT (:N {v: 50})")
        sq.refresh()
        text = telemetry.render_prometheus()
        assert "repro_standing_refreshes_total" in text
        assert 'repro_mutations_total{engine="gql",op="nodes_created"} 1' in text
        assert 'repro_transactions_total{engine="gql",outcome="commit"} 1' in text

    def test_rolled_back_transaction_records_outcome_only(self):
        g = chain()
        telemetry = Telemetry()
        session = GqlSession(g, telemetry=telemetry)
        with pytest.raises(Exception):
            session.execute("MATCH (a:N) SET a.boom = 1 / 'not a number'")
        text = telemetry.render_prometheus()
        assert 'repro_transactions_total{engine="gql",outcome="rollback"} 1' in text
        # rolled-back mutations never happened: no mutation labelsets
        assert "repro_mutations_total{" not in text

    def test_session_execute_surfaces_mutations_with_telemetry(self):
        g = chain()
        session = GqlSession(g, telemetry=Telemetry())
        result = session.execute("INSERT (:N {v: 60})")
        assert result.mutations == {"nodes_created": 1}

    def test_standing_steps_metric_accumulates(self):
        g = chain()
        telemetry = Telemetry()
        session = GqlSession(g, telemetry=telemetry)
        sq = session.register_standing(QUERY)
        g.add_edge("m", "n3", "n0", labels=["E"])
        delta = sq.refresh()
        assert delta.steps > 0
        value = telemetry.standing_steps_total.value(
            fingerprint=telemetry.standing_steps_total.labelsets()[0]["fingerprint"]
        )
        assert value == delta.steps
