"""GQL host: query parsing, projection, aggregation, session management."""

import pytest

from repro.errors import GpmlSyntaxError, GqlError
from repro.gql import GqlSession, parse_gql_query
from repro.gql.query import execute_gql
from repro.graph import Path


@pytest.fixture()
def session(fig1):
    return GqlSession(fig1)


class TestParsing:
    def test_clauses(self):
        q = parse_gql_query(
            "MATCH (a)->(b) WHERE a.x = 1 "
            "RETURN DISTINCT a.owner AS o, b "
            "ORDER BY o DESC LIMIT 5 OFFSET 2"
        )
        assert q.distinct
        assert [item.alias for item in q.items] == ["o", "b"]
        assert q.order_by[0].descending
        assert (q.limit, q.offset) == (5, 2)
        assert "WHERE" in q.pattern_text

    def test_default_aliases(self):
        q = parse_gql_query("MATCH (a)->(b) RETURN a, a.owner, COUNT(b)")
        assert [item.alias for item in q.items] == ["a", "a.owner", "col3"]

    def test_use_clause(self):
        q = parse_gql_query("USE bank MATCH (a) RETURN a")
        assert q.graph_name == "bank"

    def test_return_required(self):
        with pytest.raises(GpmlSyntaxError):
            parse_gql_query("MATCH (a)->(b)")


class TestProjection:
    def test_scalar_projection(self, session):
        result = session.execute(
            "MATCH (x:Account WHERE x.isBlocked='yes') RETURN x.owner"
        )
        assert result.records == [{"x.owner": "Jay"}]
        assert result.scalar() == "Jay"

    def test_elements_stay_first_class(self, session):
        result = session.execute("MATCH (c:City) RETURN c")
        node = result.records[0]["c"]
        assert node.id == "c2" and node.has_label("City")

    def test_paths_first_class(self, session):
        result = session.execute(
            "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha') "
            "RETURN p, length(p) AS len ORDER BY len"
        )
        assert isinstance(result.records[0]["p"], Path)
        assert [r["len"] for r in result] == [2, 4, 5]

    def test_distinct(self, session):
        dup = session.execute("MATCH (x:Account)-[:Transfer]->() RETURN x.isBlocked")
        distinct = session.execute(
            "MATCH (x:Account)-[:Transfer]->() RETURN DISTINCT x.isBlocked"
        )
        assert len(dup) == 8 and len(distinct) == 2

    def test_order_limit_offset(self, session):
        result = session.execute(
            "MATCH (x:Account) RETURN x.owner AS o ORDER BY o LIMIT 2 OFFSET 1"
        )
        assert [r["o"] for r in result] == ["Charles", "Dave"]

    def test_order_by_desc_nulls(self, session):
        result = session.execute(
            "MATCH (x:Account) [-[:signInWithIP]->(i)]? "
            "RETURN x.owner AS o, i ORDER BY o"
        )
        assert len(result) == 6 + 2  # two accounts have both branches


class TestAggregation:
    def test_vertical_grouping(self, session):
        result = session.execute(
            "MATCH (a:Account)-[t:Transfer]->(b) "
            "RETURN a.owner AS owner, COUNT(b) AS outgoing "
            "ORDER BY outgoing DESC, owner LIMIT 2"
        )
        assert [(r["owner"], r["outgoing"]) for r in result] == [
            ("Dave", 2),
            ("Mike", 2),
        ]

    def test_vertical_sum(self, session):
        result = session.execute(
            "MATCH (a:Account)-[t:Transfer]->(b) "
            "RETURN a.owner AS owner, SUM(t.amount) AS total ORDER BY owner"
        )
        totals = {r["owner"]: r["total"] for r in result}
        assert totals["Mike"] == 16_000_000

    def test_global_aggregate_single_group(self, session):
        result = session.execute("MATCH (a:Account) RETURN COUNT(a) AS n")
        assert result.records == [{"n": 6}]

    def test_horizontal_group_variable_aggregate(self, session):
        # SUM over a group variable folds per row, not across rows
        result = session.execute(
            "MATCH TRAIL (a WHERE a.owner='Dave')-[e:Transfer]->*"
            "(b WHERE b.owner='Aretha') "
            "RETURN length(p) AS len, SUM(e.amount) AS total, p "
            "ORDER BY len"
            .replace("length(p)", "COUNT(e)")
        )
        rows = [(r["len"], r["total"]) for r in result]
        assert rows[0] == (2, 20_000_000)

    def test_count_distinct_vertical(self, session):
        result = session.execute(
            "MATCH (a:Account)-[t:Transfer]->(b) RETURN COUNT(DISTINCT b) AS n"
        )
        # targets: a3,a2,a4,a6,a3,a5,a5,a1 -> 6 distinct accounts
        assert result.scalar() == 6


class TestResultApi:
    def test_column_access(self, session):
        result = session.execute("MATCH (c:Country) RETURN c.name AS n ORDER BY n")
        assert result.column("n") == ["Ankh-Morpork", "Zembla"]
        with pytest.raises(GqlError):
            result.column("nope")

    def test_scalar_requires_1x1(self, session):
        result = session.execute("MATCH (c:Country) RETURN c.name")
        with pytest.raises(GqlError):
            result.scalar()

    def test_to_table_bridge(self, session):
        table = session.execute("MATCH (c:City) RETURN c, c.name AS n").to_table()
        assert table.to_dicts() == [{"c": "c2", "n": "Ankh-Morpork"}]


class TestSession:
    def test_use_selects_graph(self, fig1):
        session = GqlSession()
        session.register_graph("bank", fig1)
        result = session.execute("USE bank MATCH (c:City) RETURN c.name")
        assert result.scalar() == "Ankh-Morpork"

    def test_unknown_graph(self):
        session = GqlSession()
        with pytest.raises(GqlError):
            session.execute("USE nope MATCH (a) RETURN a")

    def test_no_default_graph(self):
        session = GqlSession()
        with pytest.raises(GqlError):
            session.execute("MATCH (a) RETURN a")

    def test_duplicate_registration(self, fig1):
        session = GqlSession()
        session.register_graph("bank", fig1)
        with pytest.raises(GqlError):
            session.register_graph("bank", fig1)

    def test_execute_gql_direct(self, fig1):
        result = execute_gql(fig1, "MATCH (c:City) RETURN c.name")
        assert result.scalar() == "Ankh-Morpork"
